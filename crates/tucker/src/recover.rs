//! Online shrink-and-continue recovery for distributed RA-HOSI-DT.
//!
//! [`dist_ra_hooi_resilient`] runs the rank-adaptive HOOI loop with the
//! full fault-tolerance stack from the lower layers wired together:
//!
//! 1. **ABFT checksums** ([`ratucker_dist::AbftMode`]) on every Gram
//!    and TTM collective; in `Recover` mode a poisoned contraction is
//!    recomputed in place (the verdict is collective, so all ranks
//!    retry together).
//! 2. **Diskless buddy replication**: at every sweep boundary each rank
//!    pushes its local block to its ring successors
//!    ([`ratucker_dist::try_refresh_buddies`]), so a dead rank's block
//!    survives in a peer's memory.
//! 3. **Shrink and continue**: when a sweep aborts with a failure-class
//!    error (peer closed, timeout, revoked), the survivors revoke the
//!    communicator, run ULFM-style agreement, re-block the global
//!    tensor onto a shrunken grid from their own blocks plus the dead
//!    ranks' replicas, restore the pre-sweep factors (replicated, so a
//!    local snapshot suffices), re-derive the sweep RNG from
//!    `(seed, sweep)`, and retry the sweep — **no disk restart**.
//! 4. **RTCK fallback**: only when a rank *and* all of its buddies die
//!    between two refreshes does the run fall back to the disk
//!    checkpoint ([`ResilientOutcome::FallbackToCheckpoint`]); the
//!    caller then restarts from
//!    [`crate::dist::dist_ra_hooi_checkpointed`] with
//!    `policy.resuming()`.
//!
//! The recovery preserves the *decision trajectory* of the fault-free
//! run: `‖X‖²` is computed once up front, redistribution is bit-exact,
//! the expansion RNG is pure in `(seed, sweep)`, and truncation ranks
//! are floored at the **original** grid dimensions (any shrunken grid
//! has elementwise-smaller dims, so the floors remain feasible). The
//! only divergence from the fault-free run is reduction order on the
//! new grid — O(ε) roundoff, which the chaos suite bounds at 1e-10.

use crate::checkpoint::{
    expansion_rng, Checkpoint, CheckpointPolicy, FileCheckpointer, RaCheckpointer,
};
use crate::core_analysis::analyze_core;
use crate::dist::{try_dist_sweep, AbftStats, DistRunResult, DistTucker, SweepCtx};
use crate::ra::RaConfig;
use crate::timings::{Phase, Timings};
use crate::tucker_tensor::TuckerTensor;
use ratucker_dist::{
    restorer_for, try_redistribute, try_refresh_buddies, AbftMode, BlockPiece, BuddyStore,
    DistTensor, TensorDist,
};
use ratucker_mpi::{choose_shrunk_dims, try_rebuild_grid, CartGrid, CommError, ShrinkOutcome};
use ratucker_obs::{StragglerDetector, StragglerPolicy};
use ratucker_tensor::io::IoScalar;
use ratucker_tensor::matrix::Matrix;
use ratucker_tensor::random::{normal_matrix, orthonormalize_columns};
use ratucker_tensor::scalar::Scalar;

/// Configuration of the online-recovery stack.
#[derive(Clone, Debug)]
pub struct ResilienceConfig {
    /// Replication degree `k`: each rank's block is mirrored on its `k`
    /// ring successors. `0` disables diskless recovery (every failure
    /// falls back to the checkpoint). The CLI flag is
    /// `--buddy-replication <k>`.
    pub buddy_degree: usize,
    /// Checksum policy for the distributed kernels. The CLI flag is
    /// `--abft {off,detect,recover}`.
    pub abft: AbftMode,
    /// Optional RTCK checkpoint policy: sweeps are checkpointed as in
    /// [`crate::dist::dist_ra_hooi_checkpointed`] so the disk fallback
    /// has something to resume from.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Upper bound on recovery rounds (shrinks + transient retries)
    /// before the run gives up and surfaces the triggering error.
    pub max_recoveries: usize,
    /// Optional straggler demotion: after every committed sweep the
    /// induced-wait deltas are fed to a [`StragglerPolicy`] detector,
    /// and a confirmed slow-but-alive rank is proactively evicted
    /// through the same shrink-and-continue machinery a crash takes.
    /// The CLI flag is `--straggler-demotion <multiple>`.
    pub straggler: Option<StragglerPolicy>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            buddy_degree: 1,
            abft: AbftMode::Off,
            checkpoint: None,
            max_recoveries: 4,
            straggler: None,
        }
    }
}

impl ResilienceConfig {
    /// Sets the replication degree.
    pub fn with_buddy_degree(mut self, k: usize) -> Self {
        self.buddy_degree = k;
        self
    }

    /// Sets the ABFT policy.
    pub fn with_abft(mut self, abft: AbftMode) -> Self {
        self.abft = abft;
        self
    }

    /// Attaches an RTCK checkpoint policy.
    pub fn with_checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// Enables straggler demotion with the given policy.
    pub fn with_straggler(mut self, policy: StragglerPolicy) -> Self {
        self.straggler = Some(policy);
        self
    }
}

/// What the fault-tolerance stack did during a completed run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Recovery rounds taken (grid shrinks plus same-topology retries
    /// after transient faults).
    pub recoveries: usize,
    /// Grid-communicator ranks (of the grid current at each failure)
    /// that were declared dead and restored from buddy replicas.
    pub restored_ranks: Vec<usize>,
    /// Grid-communicator ranks (of the grid current at each verdict)
    /// that were alive but confirmed as stragglers and proactively
    /// demoted.
    pub demoted_ranks: Vec<usize>,
    /// Dimensions of the grid the run finished on.
    pub final_grid: Vec<usize>,
    /// ABFT detection / recomputation counters.
    pub abft: AbftStats,
    /// Highest rung of the graceful-degradation ladder the run reached
    /// under memory pressure (`0` = never degraded; see [`RUNG_FREEZE`]).
    pub max_rung: u8,
}

/// Per-rank outcome of a resilient run.
#[derive(Clone, Debug)]
pub enum ResilientOutcome<T: Scalar> {
    /// The run finished on this rank's (possibly shrunken) grid.
    Completed {
        /// The decomposition and per-sweep history.
        result: Box<DistRunResult<T>>,
        /// The grid the run finished on (needed to gather the core).
        grid: Box<CartGrid>,
        /// What the fault-tolerance stack did along the way.
        report: RecoveryReport,
    },
    /// This rank survived a failure but did not fit the shrunken grid;
    /// it contributed its pieces to the redistribution and exited.
    Spare {
        /// What the stack had done up to the exit.
        report: RecoveryReport,
        /// Phase breakdown up to the exit, including the time spent in
        /// the recovery rounds themselves ([`Phase::Recovery`]).
        timings: Timings,
    },
    /// A dead rank's block is unrecoverable in memory (the rank and all
    /// of its buddies died between two refreshes, or replication is
    /// disabled): the caller must restart from the disk checkpoint.
    FallbackToCheckpoint {
        /// Grid-communicator ranks declared dead at the fatal failure.
        dead: Vec<usize>,
        /// Human-readable reason.
        reason: String,
        /// Phase breakdown up to the fallback decision, including the
        /// recovery rounds that failed to restore the block.
        timings: Timings,
    },
}

impl<T: Scalar> ResilientOutcome<T> {
    /// The merged per-phase breakdown of the run, whatever its outcome.
    /// Shrink/restore/refresh time is charged to [`Phase::Recovery`],
    /// so the cost of the fault-tolerance stack is visible next to the
    /// algorithmic phases.
    pub fn timings(&self) -> &Timings {
        match self {
            ResilientOutcome::Completed { result, .. } => &result.timings,
            ResilientOutcome::Spare { timings, .. } => timings,
            ResilientOutcome::FallbackToCheckpoint { timings, .. } => timings,
        }
    }

    /// A stable one-word label for the outcome variant, for job-scoped
    /// status reporting (the serve layer surfaces this per job without
    /// matching on the generic enum itself).
    pub fn kind_label(&self) -> &'static str {
        match self {
            ResilientOutcome::Completed { .. } => "completed",
            ResilientOutcome::Spare { .. } => "spare",
            ResilientOutcome::FallbackToCheckpoint { .. } => "fallback",
        }
    }

    /// The recovery report, when the stack produced one. `Completed` and
    /// `Spare` ranks carry a report; a `FallbackToCheckpoint` verdict is
    /// reached *before* a report exists, so it returns `None`.
    pub fn report(&self) -> Option<&RecoveryReport> {
        match self {
            ResilientOutcome::Completed { report, .. } => Some(report),
            ResilientOutcome::Spare { report, .. } => Some(report),
            ResilientOutcome::FallbackToCheckpoint { .. } => None,
        }
    }
}

/// What one recovery round decided.
enum Recovery<T: Scalar> {
    /// Same topology (every member survived — the fault was transient);
    /// retry the sweep.
    Retry,
    /// Continue on a shrunken grid with the re-blocked tensor.
    Continue {
        grid: Box<CartGrid>,
        x: DistTensor<T>,
        restored: Vec<usize>,
    },
    /// This rank is a spare on the shrunken grid: pieces contributed,
    /// no block owned.
    Spare,
    /// Online recovery is impossible; fall back to the checkpoint.
    Fallback { dead: Vec<usize>, reason: String },
}

/// Is this error the failure class that triggers shrink-and-continue
/// (as opposed to data corruption, which has its own policy)?
/// `DeadlineExceeded` (a gray failure: the peer is alive but blew its
/// per-collective budget) and `Demoted` (the failure detector evicted
/// a rank) both take the same revoke → agree → shrink path a crash
/// does. `BudgetExceeded` (a resource failure: the allocation was
/// refused by the memory ledger, and the refusing rank revoked the
/// communicator so its peers flush too) rides the same path, but the
/// post-recovery rung verdict escalates the degradation ladder instead
/// of shrinking the grid — no rank died.
fn is_failure(e: &CommError) -> bool {
    matches!(
        e,
        CommError::PeerClosed { .. }
            | CommError::Timeout { .. }
            | CommError::Revoked { .. }
            | CommError::SizeMismatch { .. }
            | CommError::DeadlineExceeded { .. }
            | CommError::Demoted { .. }
            | CommError::BudgetExceeded { .. }
    )
}

/// Highest rung of the graceful-degradation ladder that still makes
/// forward progress. The rungs (see `DESIGN.md` §14):
///
/// * **0** — normal operation: monolithic TTM reduce-scatter, one-shot
///   Gram assembly.
/// * **1** — chunked TTM: the packed slab is reduced one destination
///   block at a time, bounding the staging buffer by the largest single
///   block instead of the whole slab.
/// * **2** — streamed Gram: the unfolding columns are assembled and
///   accumulated into the Gram matrix in batches instead of one
///   full-width scratch matrix.
/// * **3** — rank growth frozen: the expansion step of RA-HOSI-DT is
///   skipped, capping factor/core memory at the current ranks.
/// * **> 3** — nothing left to shed: clean
///   [`ResilientOutcome::FallbackToCheckpoint`].
const RUNG_FREEZE: u8 = 3;

/// One recovery round: revoke → agree → (if members died) advertise
/// replica holdings, designate restorers, shrink, re-block. Collective
/// over the current grid's survivors. Errors during recovery itself
/// (e.g. another rank dying mid-redistribution) surface as `Err` and
/// the driver retries the whole round against the new failure.
fn try_recover<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    buddies: &BuddyStore<T>,
    degree: usize,
) -> Result<Recovery<T>, CommError> {
    grid.comm.revoke();
    let survivors = grid.comm.try_agree()?;
    let p = grid.comm.size();
    let me = grid.comm.rank();
    let in_surv = |r: usize| survivors.contains(&grid.comm.world_rank_of(r));
    let dead: Vec<usize> = (0..p).filter(|&r| !in_surv(r)).collect();
    if dead.is_empty() {
        // Transient fault (dropped message, spurious timeout): the
        // epoch bump in `try_agree` has already quarantined stale
        // traffic; retry on the same topology.
        return Ok(Recovery::Retry);
    }
    if degree == 0 {
        return Ok(Recovery::Fallback {
            dead,
            reason: "buddy replication disabled (--buddy-replication 0)".into(),
        });
    }

    // The dense survivor communicator; same member order everywhere.
    let newcomm = grid
        .comm
        .shrink(&survivors)
        .expect("an agreed survivor is in its own survivor list");

    // Advertise which dead ranks' replicas each survivor actually holds
    // (a refresh interrupted by the failure may have left holdings
    // uneven), then designate restorers deterministically from the
    // shared view: the first ring successor that both survived and
    // holds the replica. `u64` payloads ride the data plane but are not
    // floats, so the corruption injector cannot touch them.
    let my_holdings: Vec<u64> = dead
        .iter()
        .filter(|&&d| buddies.replica_for(d).is_some())
        .map(|&d| d as u64)
        .collect();
    let all_holdings = newcomm.try_allgatherv(my_holdings)?;
    // Map: old-grid comm rank → dead ranks whose replicas it holds.
    let world_to_old: std::collections::HashMap<usize, usize> =
        (0..p).map(|r| (grid.comm.world_rank_of(r), r)).collect();
    let mut holdings_of_old: Vec<Vec<usize>> = vec![Vec::new(); p];
    for (new_rank, held) in all_holdings.iter().enumerate() {
        let old = world_to_old[&newcomm.world_rank_of(new_rank)];
        holdings_of_old[old] = held.iter().map(|&d| d as usize).collect();
    }

    let mut my_pieces: Vec<BlockPiece<T>> =
        vec![BlockPiece::from_block(x.dist(), x.coords(), x.local())];
    for &d in &dead {
        let holder = restorer_for(d, p, degree, |r| {
            in_surv(r) && holdings_of_old[r].contains(&d)
        });
        match holder {
            Some(h) if h == me => {
                let rep = buddies
                    .replica_for(d)
                    .expect("designated restorer advertises the replica it holds");
                my_pieces.push(rep.to_piece(x));
            }
            Some(_) => {}
            None => {
                return Ok(Recovery::Fallback {
                    reason: format!(
                        "rank {d} and all {degree} of its replica holders died \
                         between refreshes; its block is unrecoverable in memory"
                    ),
                    dead,
                });
            }
        }
    }

    // Re-block onto the shrunken grid. The destination grid occupies
    // the first `Π dims` ranks of `newcomm` — the same layout
    // `try_rebuild_grid` produces below, so coordinates line up.
    let new_dims = choose_shrunk_dims(grid.dims(), newcomm.size());
    let new_dist = TensorDist::new(x.global_shape().clone(), &new_dims);
    let block = try_redistribute(&newcomm, &new_dist, my_pieces)?;
    match try_rebuild_grid(newcomm, grid.dims())? {
        ShrinkOutcome::Active(g2) => Ok(Recovery::Continue {
            grid: g2,
            x: block.expect("active ranks of the shrunken grid receive a block"),
            restored: dead,
        }),
        ShrinkOutcome::Spare(_) => Ok(Recovery::Spare),
    }
}

/// What a burst of recovery rounds decided for this rank.
enum RoundsOutcome {
    /// A topology was committed (same or shrunken); resume sweeping.
    Resumed,
    /// This rank left the grid (spare on the shrunken topology, or
    /// itself demoted).
    Spare,
    /// Online recovery is impossible; fall back to the checkpoint.
    Fallback { dead: Vec<usize>, reason: String },
    /// Recovery itself failed fatally.
    Failed(CommError),
}

/// Runs recovery rounds against `trigger` (and any fresh failures that
/// strike during recovery) until a topology commits, this rank exits,
/// or the `max_recoveries` cap is hit. On success `grid`/`x`/`buddies`
/// are updated in place; all time spent is charged to
/// [`Phase::Recovery`].
///
/// Gray-failure triggers get one extra step: a
/// [`CommError::DeadlineExceeded`] blame names a slow-but-alive peer,
/// which is retired *before* agreement so the shrunken topology
/// excludes it — the ULFM machinery only evicts ranks it cannot hear
/// from, and a straggler still answers eventually (on the ctrl plane
/// it answers promptly, so agreement alone would keep re-admitting
/// it). The blame is settled by the fabric's wait-for chain walk
/// ([`ratucker_mpi::Fabric::resolve_blame`]), not taken at face value.
fn recovery_rounds<T: Scalar>(
    grid: &mut CartGrid,
    x: &mut DistTensor<T>,
    buddies: &mut BuddyStore<T>,
    res: &ResilienceConfig,
    report: &mut RecoveryReport,
    timings: &mut Timings,
    trigger: CommError,
) -> RoundsOutcome {
    let rec_t0 = std::time::Instant::now();
    let me_world = grid.comm.world_rank_of(grid.comm.rank());
    let mut last = trigger;
    let mut round = 0;
    let out = loop {
        if let CommError::DeadlineExceeded { src, .. } = &last {
            // The proximate src of an expired budget may itself be a
            // healthy rank queued up behind the real straggler, so the
            // blame is resolved along the fabric's wait-for chain
            // before anyone is retired.
            let blamed = grid.comm.fabric().resolve_blame(me_world, *src);
            if blamed != me_world {
                grid.comm.fabric().retire(blamed);
            }
        }
        report.recoveries += 1;
        round += 1;
        if report.recoveries > res.max_recoveries {
            // A budget refusal at the cap still gets a clean exit: the
            // checkpoint fallback is exactly what an operator restarts
            // from with more memory, and returning the raw error here
            // would surface as an untyped failure on this rank only.
            break if matches!(last, CommError::BudgetExceeded { .. }) {
                RoundsOutcome::Fallback {
                    dead: Vec::new(),
                    reason: format!(
                        "memory budget pressure exhausted the recovery budget \
                         ({} recoveries): restart from the checkpoint with more \
                         memory or fewer ranks per node",
                        res.max_recoveries
                    ),
                }
            } else {
                RoundsOutcome::Failed(last)
            };
        }
        // The span is scoped to the recovery call so the `Continue`
        // arm below can replace `grid` freely.
        let recovery = {
            let _s = ratucker_obs::span(&grid.comm, "Recovery");
            try_recover(grid, x, buddies, res.buddy_degree)
        };
        match recovery {
            Ok(Recovery::Retry) => break RoundsOutcome::Resumed,
            Ok(Recovery::Continue {
                grid: g2,
                x: x2,
                restored,
            }) => {
                *grid = *g2;
                *x = x2;
                // The old store's replicas are keyed by the old grid's
                // ranks and block shapes; they are meaningless on the
                // new topology. The retry's refresh rebuilds the store
                // before the sweep; a failure in that window
                // conservatively falls back to disk.
                *buddies = BuddyStore::disabled();
                report.restored_ranks.extend(restored);
                break RoundsOutcome::Resumed;
            }
            Ok(Recovery::Spare) => break RoundsOutcome::Spare,
            Ok(Recovery::Fallback { dead, reason }) => {
                break RoundsOutcome::Fallback { dead, reason }
            }
            Err(CommError::Demoted { rank }) if rank == me_world => {
                // Someone else's blame evicted *us* mid-recovery: exit
                // cleanly; the survivors restore our block.
                break RoundsOutcome::Spare;
            }
            Err(CommError::BudgetExceeded { .. }) => {
                // A budget refusal inside recovery is deterministic:
                // retrying the round reruns the same allocation, and
                // the degradation ladder cannot shrink replica/restore
                // storage. Leave the grid instead — retire self so the
                // survivors' next agreement excludes this rank and
                // restores its block from the buddy replicas, exactly
                // like a demoted straggler.
                grid.comm.fabric().retire(me_world);
                break RoundsOutcome::Spare;
            }
            Err(e2) if is_failure(&e2) && round <= res.max_recoveries => last = e2,
            Err(e2) => break RoundsOutcome::Failed(e2),
        }
    };
    timings.record(Phase::Recovery, rec_t0.elapsed().as_secs_f64());
    out
}

/// One straggler-detection window after a committed sweep. Collective
/// over the grid: comm rank 0 scores every member by how long the rest
/// of the grid spent blocked waiting on it since the last window (the
/// induced-wait delta from
/// [`ratucker_mpi::TrafficStats::induced_wait_us`]) and feeds the
/// scores to the detector; the verdict rides the ctrl plane
/// ([`ratucker_mpi::Comm::try_verdict_max`], encoded as
/// `comm rank + 1`) so every rank acts on the same decision even
/// though the counters are read at slightly different instants.
fn straggler_window(
    grid: &CartGrid,
    detector: &mut StragglerDetector,
    prev_wait_us: &mut Vec<u64>,
) -> Result<Option<usize>, CommError> {
    let p = grid.comm.size();
    let now = grid.comm.traffic().induced_wait_us();
    let verdict = if grid.comm.rank() == 0 {
        let mut scores = vec![0.0; p];
        for (r, score) in scores.iter_mut().enumerate() {
            let w = grid.comm.world_rank_of(r);
            let cur = now.get(w).copied().unwrap_or(0);
            let old = prev_wait_us.get(w).copied().unwrap_or(0);
            *score = cur.saturating_sub(old) as f64 * 1e-6;
        }
        detector.observe(&scores).map_or(0.0, |v| (v + 1) as f64)
    } else {
        0.0
    };
    *prev_wait_us = now;
    let v = grid.comm.try_verdict_max(verdict)?;
    Ok((v > 0.0).then(|| v as usize - 1))
}

/// Outcome of one successful sweep attempt (before it is committed to
/// the driver's state).
struct SweepOutcome<T: Scalar> {
    core: DistTensor<T>,
    err: f64,
    new_ranks: Vec<usize>,
    met: bool,
}

/// One full RA-HOOI iteration — sweep, threshold test, truncate-or-grow
/// — with every collective fallible. Mirrors the iteration body of
/// `dist_ra_hooi_impl` exactly (same arithmetic, same decisions), with
/// one deliberate difference: truncation ranks are floored at `floor`
/// (the *original* grid dims) instead of the current grid dims, so the
/// decision trajectory is invariant under grid shrinks.
#[allow(clippy::too_many_arguments)]
fn attempt_sweep<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    factors: &mut Vec<Matrix<T>>,
    ranks: &[usize],
    it: usize,
    config: &RaConfig,
    threshold: f64,
    x_norm_sq: f64,
    dims: &[usize],
    floor: &[usize],
    timings: &mut Timings,
    ctx: &mut SweepCtx,
) -> Result<SweepOutcome<T>, CommError> {
    let core = try_dist_sweep(grid, x, factors, ranks, &config.inner, timings, ctx)?;
    let core_norm_sq = core.try_squared_norm(grid)?;
    if core_norm_sq >= threshold {
        let core_repl = timings.time(Phase::Other, || core.try_gather_replicated(grid))?;
        let analysis = timings.time(Phase::CoreAnalysis, || {
            let _s = ratucker_obs::span(&grid.comm, "CoreAnalysis");
            analyze_core(&core_repl, dims, x_norm_sq, config.eps)
        });
        if let Some(a) = analysis {
            let _mem = ratucker_mem::with_phase(ratucker_mem::MemPhase::Factors);
            let new_ranks: Vec<usize> =
                a.ranks.iter().zip(floor).map(|(&r, &p)| r.max(p)).collect();
            let full = TuckerTensor::new(core_repl, factors.clone());
            let trunc = full.truncate(&new_ranks);
            *factors = trunc.factors.clone();
            Ok(SweepOutcome {
                core: DistTensor::scatter_from_replicated(grid, &trunc.core),
                err: trunc.rel_error_from_core(x_norm_sq),
                new_ranks,
                met: true,
            })
        } else {
            Ok(SweepOutcome {
                err: ((x_norm_sq - core_norm_sq).max(0.0) / x_norm_sq).sqrt(),
                core,
                new_ranks: ranks.to_vec(),
                met: true,
            })
        }
    } else {
        let err = ((x_norm_sq - core_norm_sq).max(0.0) / x_norm_sq).sqrt();
        if ratucker_mem::rung() >= RUNG_FREEZE {
            // Rung 3 of the degradation ladder: the grid is under
            // memory pressure, and rank growth is the one step that
            // *increases* the working set (wider factors, bigger core,
            // bigger collectives). Freeze the ranks and keep sweeping —
            // the iteration still improves the factors at the current
            // ranks; it just stops chasing the target tolerance upward.
            // The rung is collectively agreed, so every rank freezes
            // the same sweep and the trajectory stays deterministic.
            return Ok(SweepOutcome {
                core,
                err,
                new_ranks: ranks.to_vec(),
                met: false,
            });
        }
        let grown: Vec<usize> = ranks
            .iter()
            .zip(dims)
            .map(|(&r, &n)| (((r as f64) * config.alpha).ceil() as usize).min(n))
            .collect();
        if grown != ranks {
            // Pure in (seed, sweep): all ranks, any retry after a
            // recovery, and any resumed run append identical columns.
            let _mem = ratucker_mem::with_phase(ratucker_mem::MemPhase::Factors);
            let mut rng = expansion_rng(config.inner.seed, it);
            for (k, u) in factors.iter_mut().enumerate() {
                if grown[k] > u.cols() {
                    let extra = normal_matrix::<T, _>(u.rows(), grown[k] - u.cols(), &mut rng);
                    let mut ext = u.hcat(&extra);
                    orthonormalize_columns(&mut ext, u.cols());
                    *u = ext;
                }
            }
        }
        Ok(SweepOutcome {
            core,
            err,
            new_ranks: grown,
            met: false,
        })
    }
}

/// Distributed rank-adaptive HOOI with online shrink-and-continue
/// recovery, diskless buddy replication, ABFT checksums, and RTCK disk
/// fallback. Collective over `grid0`.
///
/// Failure semantics per error class:
/// - `PeerClosed` / `Timeout` / `Revoked` → revoke, agree, shrink (or
///   same-topology retry for transient faults), restore dead blocks
///   from buddy replicas, reset factors to the pre-sweep snapshot, and
///   retry the sweep. No disk involved.
/// - [`CommError::SilentCorruption`] → under [`AbftMode::Recover`] the
///   kernels already recomputed up to the retry cap; a persistent
///   mismatch (and any mismatch under [`AbftMode::Detect`]) surfaces as
///   `Err` — consistently on every rank, because the checksum verdict
///   is collective.
/// - Everything else (NaN screens, type mismatches) surfaces as `Err`.
///
/// `Err` is also returned when `max_recoveries` consecutive recovery
/// rounds fail to produce a working topology.
pub fn dist_ra_hooi_resilient<T: IoScalar>(
    grid0: &CartGrid,
    x0: &DistTensor<T>,
    config: &RaConfig,
    res: &ResilienceConfig,
) -> Result<ResilientOutcome<T>, CommError> {
    let dims: Vec<usize> = x0.global_shape().dims().to_vec();
    if let Err(msg) = config.validate(&dims) {
        panic!("infeasible rank-adaptive configuration: {msg}");
    }
    // Rank floors are frozen at the original grid dims (see module docs).
    let floor: Vec<usize> = grid0.dims().to_vec();
    let mut grid = grid0.clone();
    let mut x = x0.clone();
    let mut report = RecoveryReport::default();

    // ‖X‖² is computed once, before any failure, and carried through
    // recoveries unchanged — recomputing it on a shrunken grid would
    // perturb the threshold by reduction-order roundoff.
    let x_norm_sq = x.try_squared_norm(&grid)?;
    let threshold = (1.0 - config.eps * config.eps) * x_norm_sq;

    let mut ranks: Vec<usize> = config
        .initial_ranks
        .iter()
        .zip(&dims)
        .map(|(&r, &n)| r.min(n).max(1))
        .collect();
    let mut factors = crate::hooi::random_init::<T>(&dims, &ranks, config.inner.seed);
    let mut start_sweep = 0;
    if let Some(policy) = &res.checkpoint {
        let mut ckpt = FileCheckpointer {
            policy,
            write: false,
        };
        if let Some(ck) =
            RaCheckpointer::<T>::resume(&mut ckpt, config.inner.seed, config.eps, &dims, x_norm_sq)
        {
            assert!(
                ck.sweep < config.max_iters,
                "checkpoint is at sweep {} but this run caps at {} sweeps",
                ck.sweep,
                config.max_iters
            );
            start_sweep = ck.sweep;
            ranks = ck.ranks;
            factors = ck.factors;
        }
    }

    let mut timings = Timings::new();
    let mut ctx = SweepCtx::new(res.abft);
    let mut sweep_errors = Vec::new();
    let mut sweep_ranks = Vec::new();
    let mut result_core: Option<DistTensor<T>> = None;
    let mut buddies: BuddyStore<T> = BuddyStore::disabled();
    let mut detector = StragglerDetector::new(res.straggler.unwrap_or_default());
    // Baseline for induced-wait deltas; refreshed every window and
    // after every topology change.
    let mut prev_wait_us: Vec<u64> = grid.comm.traffic().induced_wait_us();

    // Dispatches a burst of recovery rounds; evaluates to `()` only on
    // the resume path (all exit outcomes return from the function).
    macro_rules! run_recovery {
        ($trigger:expr) => {
            match recovery_rounds(
                &mut grid,
                &mut x,
                &mut buddies,
                res,
                &mut report,
                &mut timings,
                $trigger,
            ) {
                RoundsOutcome::Resumed => {
                    detector.reset();
                    prev_wait_us = grid.comm.traffic().induced_wait_us();
                }
                RoundsOutcome::Spare => {
                    report.abft = ctx.stats;
                    return Ok(ResilientOutcome::Spare { report, timings });
                }
                RoundsOutcome::Fallback { dead, reason } => {
                    return Ok(ResilientOutcome::FallbackToCheckpoint {
                        dead,
                        reason,
                        timings,
                    });
                }
                RoundsOutcome::Failed(e) => return Err(e),
            }
        };
    }

    let mut it = start_sweep;
    while it < config.max_iters {
        if let Some(policy) = &res.checkpoint {
            let _mem = ratucker_mem::with_phase(ratucker_mem::MemPhase::Checkpoint);
            let mut ckpt = FileCheckpointer {
                policy,
                write: grid.comm.rank() == 0,
            };
            ckpt.save(&Checkpoint {
                sweep: it,
                seed: config.inner.seed,
                eps: config.eps,
                x_norm_sq,
                dims: dims.clone(),
                ranks: ranks.clone(),
                factors: factors.clone(),
            });
        }
        // The sweep mutates factors in place; snapshot them (replicated,
        // so a local copy is globally consistent) for the retry path.
        let snapshot = {
            let _s = ratucker_obs::span(&grid.comm, "snapshot");
            factors.clone()
        };
        // Buddy refresh is pure fault-tolerance overhead: charge it to
        // the Recovery phase so the breakdown shows the price of
        // resilience next to the algorithmic phases.
        let refresh_t0 = std::time::Instant::now();
        let refreshed = {
            let _s = ratucker_obs::span(&grid.comm, "refresh");
            try_refresh_buddies(&grid, &x, res.buddy_degree)
        };
        timings.record(Phase::Recovery, refresh_t0.elapsed().as_secs_f64());
        let attempt = refreshed.and_then(|store| {
            buddies = store;
            attempt_sweep(
                &grid,
                &x,
                &mut factors,
                &ranks,
                it,
                config,
                threshold,
                x_norm_sq,
                &dims,
                &floor,
                &mut timings,
                &mut ctx,
            )
        });
        match attempt {
            Ok(out) => {
                ranks = out.new_ranks;
                sweep_errors.push(out.err);
                sweep_ranks.push(ranks.clone());
                result_core = Some(out.core);
                it += 1;
                if out.met && config.stop_on_threshold {
                    break;
                }
                // Straggler demotion: a committed sweep closes one
                // detection window. A confirmed slow-but-alive rank is
                // proactively evicted through the same shrink path a
                // crash takes — its block is restored from buddy
                // replicas and the committed factors carry over
                // unchanged (they are replicated and the tensor is
                // immutable).
                if res.straggler.is_some() && grid.comm.size() >= 2 {
                    match straggler_window(&grid, &mut detector, &mut prev_wait_us) {
                        Ok(None) => {}
                        Ok(Some(victim)) => {
                            let victim_world = grid.comm.world_rank_of(victim);
                            report.demoted_ranks.push(victim);
                            if grid.comm.rank() == victim {
                                // Evict ourselves *after* the verdict
                                // completed everywhere, so the
                                // survivors' agreement excludes us and
                                // none of their collectives hang on us.
                                grid.comm.fabric().retire(victim_world);
                                report.abft = ctx.stats;
                                return Ok(ResilientOutcome::Spare { report, timings });
                            }
                            run_recovery!(CommError::Demoted { rank: victim_world });
                        }
                        Err(e) if is_failure(&e) => run_recovery!(e),
                        Err(e) => return Err(e),
                    }
                }
            }
            Err(CommError::Demoted { rank })
                if rank == grid.comm.world_rank_of(grid.comm.rank()) =>
            {
                // The failure detector (a peer's deadline blame or a
                // straggler verdict) evicted this rank while it was
                // slow but alive: exit cleanly as a spare; the
                // survivors restore our block from replicas.
                report.abft = ctx.stats;
                return Ok(ResilientOutcome::Spare { report, timings });
            }
            Err(e) if is_failure(&e) => {
                // Shrink-and-continue: retry recovery rounds against
                // fresh failures until one commits or the cap is hit,
                // then retry this sweep from the pre-sweep state.
                let budget_hit = matches!(e, CommError::BudgetExceeded { .. });
                run_recovery!(e);
                // Recovery can race a sweep commit: a revocation that
                // strikes inside the threshold verdict may leave some
                // ranks having committed the sweep (factors updated,
                // ranks grown) while others still retry it, and their
                // data-plane messages would then disagree on every
                // block size. The sweep index is agreed before
                // resuming; a mismatch is unrecoverable online — the
                // divergent ranks hold different factor states — so it
                // falls back to the checkpoint cleanly instead.
                let hi = grid.comm.try_verdict_max(it as f64)? as usize;
                let lo = (-grid.comm.try_verdict_max(-(it as f64))?) as usize;
                if hi != lo {
                    return Ok(ResilientOutcome::FallbackToCheckpoint {
                        dead: Vec::new(),
                        reason: format!(
                            "recovery raced a sweep commit (sweeps {lo}..{hi} in \
                             flight): the survivors hold divergent factor states, \
                             resume from the checkpoint"
                        ),
                        timings,
                    });
                }
                // Degradation-ladder verdict, collective over the
                // resumed grid. Only the rank whose allocation was
                // refused sees `BudgetExceeded` (its peers flush with
                // `Revoked`), so the escalation proposal rides a
                // max-verdict on the ctrl plane: every survivor commits
                // to the same rung before the sweep retries. A verdict
                // past the last rung means the ladder is exhausted —
                // the retry would refuse the same allocation again —
                // so the run falls back to the disk checkpoint cleanly
                // on every rank at once.
                let old_rung = ratucker_mem::rung();
                let proposed = if budget_hit {
                    old_rung.saturating_add(1)
                } else {
                    old_rung
                };
                let verdict = grid.comm.try_verdict_max(proposed as f64)? as u8;
                if verdict > RUNG_FREEZE {
                    return Ok(ResilientOutcome::FallbackToCheckpoint {
                        dead: Vec::new(),
                        reason: format!(
                            "memory budget exhausted beyond degradation rung {RUNG_FREEZE}: \
                             no cheaper execution mode is left, restart from the checkpoint \
                             with more memory or fewer ranks per node"
                        ),
                        timings,
                    });
                }
                ratucker_mem::set_rung(verdict);
                report.max_rung = report.max_rung.max(verdict);
                if verdict > old_rung {
                    // A ladder escalation is deterministic progress —
                    // the retry runs strictly cheaper — not a crash
                    // retry: refund the recovery round so
                    // `max_recoveries` keeps bounding genuine fault
                    // storms only. `old_rung` and `verdict` are both
                    // collectively committed, so every rank refunds in
                    // lockstep.
                    report.recoveries = report.recoveries.saturating_sub(1);
                }
                factors = snapshot;
            }
            Err(e) => return Err(e),
        }
    }

    report.final_grid = grid.dims().to_vec();
    report.abft = ctx.stats;
    let rel_error = *sweep_errors.last().expect("max_iters must be at least 1");
    Ok(ResilientOutcome::Completed {
        result: Box::new(DistRunResult {
            tucker: DistTucker {
                core: result_core.expect("max_iters must be at least 1"),
                factors,
            },
            rel_error,
            timings,
            sweep_errors,
            sweep_ranks,
        }),
        grid: Box::new(grid),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::dist_ra_hooi;
    use crate::hooi::HooiConfig;
    use crate::synthetic::SyntheticSpec;
    use ratucker_mpi::{CorruptMode, FaultPlan, Universe};

    fn build_dist(grid: &CartGrid, spec: &SyntheticSpec) -> DistTensor<f64> {
        let full = spec.build::<f64>();
        DistTensor::scatter_from_replicated(grid, &full)
    }

    fn undershoot_cfg() -> RaConfig {
        RaConfig::ra_hosi_dt(0.05, &[2, 2, 2])
            .with_seed(19)
            .with_alpha(2.0)
            .with_max_iters(3)
    }

    #[test]
    fn fault_free_resilient_run_is_bitwise_identical_to_plain() {
        let spec = SyntheticSpec::new(&[12, 10, 8], &[3, 3, 2], 0.02, 209);
        let cfg = undershoot_cfg();
        let (s, c2) = (spec.clone(), cfg.clone());
        let plain = Universe::launch(4, move |c| {
            let grid = CartGrid::new(c, &[2, 2, 1]);
            let x = build_dist(&grid, &s);
            let res = dist_ra_hooi(&grid, &x, &c2);
            (res.rel_error, res.tucker.factors.clone())
        });
        let (s, c2) = (spec.clone(), cfg.clone());
        let resilient = Universe::launch(4, move |c| {
            let grid = CartGrid::new(c, &[2, 2, 1]);
            let x = build_dist(&grid, &s);
            match dist_ra_hooi_resilient(&grid, &x, &c2, &ResilienceConfig::default()).unwrap() {
                ResilientOutcome::Completed { result, report, .. } => {
                    (result.rel_error, result.tucker.factors.clone(), report)
                }
                other => panic!("fault-free run must complete, got {other:?}"),
            }
        });
        for ((err_a, fac_a), (err_b, fac_b, report)) in plain.iter().zip(&resilient) {
            assert_eq!(err_a, err_b);
            for (ua, ub) in fac_a.iter().zip(fac_b) {
                assert_eq!(ua.max_abs_diff(ub), 0.0);
            }
            assert_eq!(report.recoveries, 0);
            assert!(report.restored_ranks.is_empty());
            assert_eq!(report.final_grid, vec![2, 2, 1]);
            assert_eq!(report.abft, AbftStats::default());
        }
    }

    #[test]
    fn crash_mid_sweep_shrinks_and_continues_online() {
        let spec = SyntheticSpec::new(&[12, 10, 8], &[3, 3, 2], 0.02, 209);
        let cfg = undershoot_cfg();

        // Fault-free reference error on the original [2,2,1] grid.
        let (s, c2) = (spec.clone(), cfg.clone());
        let reference = Universe::launch(4, move |c| {
            let grid = CartGrid::new(c, &[2, 2, 1]);
            let x = build_dist(&grid, &s);
            dist_ra_hooi(&grid, &x, &c2).rel_error
        })[0];

        // Kill rank 2 mid-sweep, after the first buddy refresh has
        // mirrored its block onto rank 3.
        let victim = 2;
        let plan = FaultPlan::quiet(41).with_crash(victim, 60);
        let (s, c2) = (spec.clone(), cfg.clone());
        let out = Universe::try_launch(4, plan, move |c| {
            let grid = CartGrid::new(c, &[2, 2, 1]);
            let x = build_dist(&grid, &s);
            dist_ra_hooi_resilient(&grid, &x, &c2, &ResilienceConfig::default()).unwrap()
        });

        let failure = out[victim].as_ref().unwrap_err();
        assert!(
            failure.message.contains("injected crash"),
            "victim should die of the injected crash, got: {}",
            failure.message
        );
        let mut completed = 0;
        let mut spares = 0;
        for (rank, res) in out.iter().enumerate() {
            if rank == victim {
                continue;
            }
            match res.as_ref().expect("survivors must not panic") {
                ResilientOutcome::Completed { result, report, .. } => {
                    completed += 1;
                    assert!(report.recoveries >= 1, "rank {rank}: {report:?}");
                    assert!(
                        report.restored_ranks.contains(&victim),
                        "rank {rank}: {report:?}"
                    );
                    // 3 survivors → the largest grid elementwise ≤ [2,2,1]
                    // has 2 ranks.
                    assert_eq!(report.final_grid, vec![2, 1, 1], "rank {rank}");
                    assert!(
                        (result.rel_error - reference).abs() < 1e-10,
                        "rank {rank}: online recovery diverged: {} vs {reference}",
                        result.rel_error
                    );
                }
                ResilientOutcome::Spare { report, .. } => {
                    spares += 1;
                    assert!(report.recoveries >= 1);
                }
                ResilientOutcome::FallbackToCheckpoint { dead, reason, .. } => {
                    panic!("rank {rank} fell back to disk (dead {dead:?}): {reason}")
                }
            }
        }
        assert_eq!((completed, spares), (2, 1));
    }

    #[test]
    fn straggler_is_demoted_online_and_the_run_converges() {
        use std::time::Duration;
        let spec = SyntheticSpec::new(&[12, 10, 8], &[3, 3, 2], 0.02, 209);
        let cfg = undershoot_cfg();

        // Fault-free reference error on the original [2,2,1] grid.
        let (s, c2) = (spec.clone(), cfg.clone());
        let reference = Universe::launch(4, move |c| {
            let grid = CartGrid::new(c, &[2, 2, 1]);
            let x = build_dist(&grid, &s);
            dist_ra_hooi(&grid, &x, &c2).rel_error
        })[0];

        // Rank 1 is alive and correct but pays a delay on every data-
        // plane operation: a gray failure no liveness check can see.
        let victim = 1;
        let plan = FaultPlan::quiet(31).with_slow_rank(victim, Duration::from_millis(5));
        let (s, c2) = (spec.clone(), cfg.clone());
        let out = Universe::try_launch(4, plan, move |c| {
            let grid = CartGrid::new(c, &[2, 2, 1]);
            let x = build_dist(&grid, &s);
            // The blame cascades: ranks stuck waiting on the victim
            // delay their own sends, inflating the median, so the
            // relative multiple is set well below the victim's ~3×
            // share.
            let res = ResilienceConfig::default().with_straggler(
                StragglerPolicy::new(2.0)
                    .with_consecutive(1)
                    .with_min_secs(0.02),
            );
            dist_ra_hooi_resilient(&grid, &x, &c2, &res).unwrap()
        });

        let mut completed = 0;
        let mut spares = 0;
        for (rank, res) in out.iter().enumerate() {
            match res.as_ref().expect("no rank panics under demotion") {
                ResilientOutcome::Completed { result, report, .. } => {
                    completed += 1;
                    assert!(
                        report.demoted_ranks.contains(&victim),
                        "rank {rank}: {report:?}"
                    );
                    assert!(
                        report.restored_ranks.contains(&victim),
                        "rank {rank}: {report:?}"
                    );
                    // 3 survivors → the largest grid elementwise ≤ [2,2,1]
                    // has 2 ranks.
                    assert_eq!(report.final_grid, vec![2, 1, 1], "rank {rank}");
                    assert!(
                        (result.rel_error - reference).abs() < 1e-10,
                        "rank {rank}: demotion diverged: {} vs {reference}",
                        result.rel_error
                    );
                }
                ResilientOutcome::Spare { .. } => spares += 1,
                ResilientOutcome::FallbackToCheckpoint { dead, reason, .. } => {
                    panic!("rank {rank} fell back to disk (dead {dead:?}): {reason}")
                }
            }
        }
        // The victim exits as a spare; one survivor does not fit the
        // shrunken grid.
        assert_eq!((completed, spares), (2, 2));
    }

    #[test]
    fn budget_below_every_rung_falls_back_to_checkpoint_cleanly() {
        let spec = SyntheticSpec::new(&[12, 10, 8], &[3, 3, 2], 0.02, 209);
        let cfg = undershoot_cfg();
        // 1 KiB is below rank 1's resident block alone, so every rung of
        // the ladder still refuses the first staging charge: the run
        // must climb 1 → 2 → 3, agree the ladder is exhausted, and fall
        // back to the checkpoint cleanly on every rank — no deadlock,
        // no abort, no rank declared dead.
        let plan = FaultPlan::quiet(11).with_mem_pressure(1, 50, 1 << 10);
        let out = Universe::try_launch(4, plan, move |c| {
            let grid = CartGrid::new(c, &[2, 2, 1]);
            let x = build_dist(&grid, &spec);
            dist_ra_hooi_resilient(&grid, &x, &cfg, &ResilienceConfig::default()).unwrap()
        });
        for (rank, res) in out.into_iter().enumerate() {
            match res.expect("no rank panics under memory pressure") {
                ResilientOutcome::FallbackToCheckpoint { dead, reason, .. } => {
                    assert!(dead.is_empty(), "rank {rank}: no rank died: {dead:?}");
                    assert!(
                        reason.contains("memory budget"),
                        "rank {rank}: unexpected reason: {reason}"
                    );
                }
                other => panic!("rank {rank}: expected checkpoint fallback, got {other:?}"),
            }
        }
    }

    #[test]
    fn finite_corruption_surfaces_collectively_under_detect() {
        let spec = SyntheticSpec::new(&[10, 9, 8], &[3, 3, 2], 0.02, 205);
        let cfg = RaConfig::ra_hosi_dt(0.1, &[3, 3, 2])
            .with_seed(13)
            .with_max_iters(2);
        let plan = FaultPlan::quiet(7).with_corruption(1.0, CorruptMode::ExponentFlip);
        let s = spec.clone();
        let out = Universe::try_launch(4, plan, move |c| {
            let grid = CartGrid::new(c, &[2, 2, 1]);
            let x = build_dist(&grid, &s);
            let res = ResilienceConfig::default().with_abft(AbftMode::Detect);
            dist_ra_hooi_resilient(&grid, &x, &cfg, &res)
        });
        // The checksum verdict is collective: every rank sees the same
        // SilentCorruption error, none hangs, none diverges.
        for (rank, res) in out.into_iter().enumerate() {
            match res.expect("ranks return the error, they do not panic") {
                Err(CommError::SilentCorruption { rel_err, .. }) => {
                    assert!(rel_err.is_finite() || rel_err.is_infinite());
                }
                other => panic!("rank {rank}: expected SilentCorruption, got {other:?}"),
            }
        }
    }

    #[test]
    fn abft_recover_recomputes_sparse_corruption_and_converges() {
        let spec = SyntheticSpec::new(&[12, 10, 8], &[3, 3, 2], 0.02, 209);
        // HOOI (Gram-EVD + direct TTM) keeps almost all sweep traffic on
        // the checked kernels.
        let mut cfg = RaConfig::ra_hosi_dt(0.1, &[3, 3, 2])
            .with_seed(13)
            .with_max_iters(2);
        cfg.inner = HooiConfig::hooi().with_seed(13);
        let plan = FaultPlan::quiet(23).with_corruption(0.01, CorruptMode::ExponentFlip);
        let s = spec.clone();
        let out = Universe::try_launch(4, plan, move |c| {
            let grid = CartGrid::new(c, &[2, 2, 1]);
            let x = build_dist(&grid, &s);
            let res = ResilienceConfig::default().with_abft(AbftMode::Recover);
            dist_ra_hooi_resilient(&grid, &x, &cfg, &res).unwrap()
        });
        let mut detected = 0;
        for (rank, res) in out.into_iter().enumerate() {
            match res.expect("no rank panics") {
                ResilientOutcome::Completed { result, report, .. } => {
                    assert!(
                        result.rel_error <= 0.1,
                        "rank {rank}: corrupted run missed the tolerance: {}",
                        result.rel_error
                    );
                    assert_eq!(report.abft.detected, report.abft.recomputed);
                    detected = report.abft.detected;
                }
                other => panic!("rank {rank}: expected completion, got {other:?}"),
            }
        }
        assert!(
            detected > 0,
            "fault plan was meant to poison at least one checked collective"
        );
    }
}
