//! The machine model: converts phase costs into seconds.

use crate::costs::{CostBreakdown, PhaseCost};

/// Machine parameters for the time model.
///
/// Defaults are Perlmutter-CPU-like (dual AMD EPYC 7763 per node); the
/// absolute values only set the scale of the curves — the *shapes* of
/// Figs. 2–3 come from the cost expressions. `calibrated` lets the bench
/// harness substitute rates measured on the host with this repository's
/// own kernels, tying the model to the implementation.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Effective GEMM-like flops/second per core for the parallel phases.
    pub flop_rate: f64,
    /// Flops/second of the *sequential* EVD (the unparallelized LAPACK
    /// call in TuckerMPI; typically several times slower than GEMM).
    pub seq_factorization_rate: f64,
    /// Memory bandwidth per node, words/second (roofline bound for the
    /// low-arithmetic-intensity TTM/contraction phases).
    pub node_bw_words: f64,
    /// Cores per node.
    pub cores_per_node: usize,
    /// Per-message latency, seconds (α).
    pub alpha: f64,
    /// Per-word transfer time, seconds (β).
    pub beta: f64,
}

impl Machine {
    /// Perlmutter-CPU-like defaults (single precision words).
    pub fn perlmutter_like() -> Machine {
        Machine {
            flop_rate: 1.5e10,
            seq_factorization_rate: 2.0e9,
            // Effective streaming bandwidth per node for tensor-sized
            // operands (~160 GB/s at 4-byte words — roughly half of STREAM
            // triad on a dual-EPYC node, reflecting the strided access of
            // slab kernels).
            node_bw_words: 4.0e10,
            cores_per_node: 128,
            alpha: 2.0e-6,
            beta: 2.0e-10, // ~5 GWords/s per-rank injection
        }
    }

    /// A machine calibrated from measured rates (flops/s) of this
    /// repository's own GEMM and EVD kernels on the host, keeping the
    /// Perlmutter-like network and node shape.
    pub fn calibrated(gemm_rate: f64, evd_rate: f64) -> Machine {
        Machine {
            flop_rate: gemm_rate,
            seq_factorization_rate: evd_rate,
            // Scale node bandwidth with the measured compute rate so the
            // compute/bandwidth balance point stays Perlmutter-like.
            node_bw_words: gemm_rate * 2.7,
            ..Machine::perlmutter_like()
        }
    }

    /// Predicted seconds for one phase on `p` cores.
    pub fn phase_time(&self, phase: &PhaseCost, p: usize) -> f64 {
        let pf = p as f64;
        let nodes = (p as f64 / self.cores_per_node as f64).max(1.0).min(pf);
        // Parallel compute: roofline of flop rate vs. node memory
        // bandwidth (touched_words is a total across ranks).
        let t_parallel = if phase.parallel_flops > 0.0 {
            let t_flops = phase.parallel_flops / (pf * self.flop_rate);
            let t_bw = phase.touched_words / (nodes * self.node_bw_words);
            t_flops.max(t_bw)
        } else {
            0.0
        };
        // Sequential/redundant factorizations do not scale with P.
        let t_seq = phase.sequential_flops / self.seq_factorization_rate;
        // α–β network model.
        let t_net = phase.words * self.beta + phase.messages * self.alpha;
        t_parallel + t_seq + t_net
    }

    /// Predicted total seconds for a breakdown on `p` cores.
    pub fn total_time(&self, costs: &CostBreakdown, p: usize) -> f64 {
        costs.phases.iter().map(|ph| self.phase_time(ph, p)).sum()
    }

    /// Per-phase `(label, seconds)` pairs.
    pub fn phase_times(&self, costs: &CostBreakdown, p: usize) -> Vec<(&'static str, f64)> {
        costs
            .phases
            .iter()
            .map(|ph| (ph.label, self.phase_time(ph, p)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::{algorithm_cost, AlgKind, Problem};

    #[test]
    fn sequential_phase_does_not_scale() {
        let m = Machine::perlmutter_like();
        let prob = Problem::new(2000, 10, 3, 1);
        let c = algorithm_cost(AlgKind::Sthosvd, &prob, &[1, 1, 1]);
        let evd = c.phases.iter().find(|p| p.label == "EVD").unwrap();
        let t1 = m.phase_time(evd, 1);
        let t1024 = m.phase_time(evd, 1024);
        assert!((t1 - t1024).abs() / t1 < 1e-9);
    }

    #[test]
    fn parallel_phase_scales_until_bandwidth_bound() {
        let m = Machine::perlmutter_like();
        let prob = Problem::new(500, 4, 3, 1);
        // Small rank → low arithmetic intensity TTM.
        let c = algorithm_cost(AlgKind::HosiDt, &prob, &[1, 1, 1]);
        let ttm = c.phases.iter().find(|p| p.label == "TTM").unwrap();
        let t1 = m.phase_time(ttm, 1);
        let t64 = m.phase_time(ttm, 64);
        let t128 = m.phase_time(ttm, 128);
        assert!(t64 < t1, "must speed up off one core");
        // Within one node, speedup saturates at the bandwidth roof:
        // 64 → 128 cores gains little.
        assert!(t128 > t64 * 0.7, "single-node saturation expected");
    }

    #[test]
    fn network_terms_increase_time() {
        let m = Machine::perlmutter_like();
        let mut phase = PhaseCost {
            label: "TTM",
            parallel_flops: 1e9,
            sequential_flops: 0.0,
            words: 0.0,
            messages: 0.0,
            touched_words: 0.0,
            overlappable_words: 0.0,
        };
        let base = m.phase_time(&phase, 16);
        phase.words = 1e9;
        phase.messages = 1e3;
        assert!(m.phase_time(&phase, 16) > base);
    }

    #[test]
    fn calibrated_keeps_balance() {
        let m = Machine::calibrated(2e9, 5e8);
        assert_eq!(m.flop_rate, 2e9);
        assert_eq!(m.seq_factorization_rate, 5e8);
        assert!(m.node_bw_words > m.flop_rate);
    }
}
