//! The strong-scaling simulator (Fig. 2 / Fig. 3 generator).
//!
//! For each core count the simulator evaluates every factorization of `P`
//! into a `d`-way grid — the paper likewise "test[s] all algorithms on a
//! variety of grids … and report[s] the fastest observed running times" —
//! and keeps the best grid's predicted time and phase breakdown.

use crate::costs::{algorithm_cost, AlgKind, Problem};
use crate::machine::Machine;

/// One point of a strong-scaling curve.
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// Core count.
    pub p: usize,
    /// The best grid found.
    pub grid: Vec<usize>,
    /// Predicted total seconds on that grid.
    pub seconds: f64,
    /// Predicted per-phase `(label, seconds)` on that grid.
    pub phase_seconds: Vec<(&'static str, f64)>,
}

/// Enumerates `d`-way factorizations of `p` (delegates to the runtime's
/// grid enumeration so the model and the functional runs agree on the
/// candidate set).
fn grids(p: usize, d: usize) -> Vec<Vec<usize>> {
    // Inline enumeration (avoids a dependency on the runtime crate):
    // all ordered factorizations of p into d factors.
    let mut out = Vec::new();
    let mut cur = vec![1usize; d];
    fn rec(p: usize, k: usize, d: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k == d - 1 {
            cur[k] = p;
            out.push(cur.clone());
            return;
        }
        for f in 1..=p {
            if p.is_multiple_of(f) {
                cur[k] = f;
                rec(p / f, k + 1, d, cur, out);
            }
        }
    }
    rec(p, 0, d, &mut cur, &mut out);
    out
}

/// Best-over-grids predicted time for one algorithm at one core count.
pub fn best_grid_time(machine: &Machine, alg: AlgKind, prob: &Problem, p: usize) -> ScalingPoint {
    let mut best: Option<ScalingPoint> = None;
    for grid in grids(p, prob.d) {
        let costs = algorithm_cost(alg, prob, &grid);
        let seconds = machine.total_time(&costs, p);
        if best.as_ref().is_none_or(|b| seconds < b.seconds) {
            best = Some(ScalingPoint {
                p,
                phase_seconds: machine.phase_times(&costs, p),
                grid,
                seconds,
            });
        }
    }
    best.expect("p ≥ 1 always admits a grid")
}

/// Full strong-scaling sweep for one algorithm.
pub fn strong_scaling(
    machine: &Machine,
    alg: AlgKind,
    prob: &Problem,
    core_counts: &[usize],
) -> Vec<ScalingPoint> {
    core_counts
        .iter()
        .map(|&p| best_grid_time(machine, alg, prob, p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::perlmutter_like()
    }

    /// The paper's 3-way synthetic problem: 3750³, ranks 30.
    fn three_way() -> Problem {
        Problem::new(3750, 30, 3, 2)
    }

    /// The paper's 4-way synthetic problem: 560⁴, ranks 10.
    fn four_way() -> Problem {
        Problem::new(560, 10, 4, 2)
    }

    #[test]
    fn sthosvd_plateaus_on_large_n_but_hosi_dt_keeps_scaling() {
        // Fig. 2 (top): for the 3-way tensor STHOSVD stops scaling past
        // ~64 cores (sequential EVD of n = 3750) while HOSI-DT scales on.
        let m = machine();
        let prob = three_way();
        let st_64 = best_grid_time(&m, AlgKind::Sthosvd, &prob, 64).seconds;
        let st_2048 = best_grid_time(&m, AlgKind::Sthosvd, &prob, 2048).seconds;
        let st_speedup = st_64 / st_2048;
        assert!(
            st_speedup < 2.0,
            "STHOSVD 64→2048 speedup should be modest, got {st_speedup}"
        );
        let hd_64 = best_grid_time(&m, AlgKind::HosiDt, &prob, 64).seconds;
        let hd_2048 = best_grid_time(&m, AlgKind::HosiDt, &prob, 2048).seconds;
        assert!(
            hd_64 / hd_2048 > 4.0,
            "HOSI-DT should keep scaling, got {}",
            hd_64 / hd_2048
        );
    }

    #[test]
    fn hosi_dt_fastest_at_scale_in_3way() {
        // Fig. 2 (top) at 4096 cores: HOSI-DT beats STHOSVD and HOOI-DT
        // by large factors (paper: 259× and 515×).
        let m = machine();
        let prob = three_way();
        let p = 4096;
        let st = best_grid_time(&m, AlgKind::Sthosvd, &prob, p).seconds;
        let hooi_dt = best_grid_time(&m, AlgKind::HooiDt, &prob, p).seconds;
        let hosi_dt = best_grid_time(&m, AlgKind::HosiDt, &prob, p).seconds;
        assert!(hosi_dt * 20.0 < st, "HOSI-DT {hosi_dt} vs STHOSVD {st}");
        assert!(
            hosi_dt * 20.0 < hooi_dt,
            "HOSI-DT {hosi_dt} vs HOOI-DT {hooi_dt}"
        );
    }

    #[test]
    fn hooi_variants_suffer_sequential_evd_in_3way() {
        // Fig. 2/3: at 4096 cores HOOI(-DT) ≈ 2× STHOSVD (twice the EVDs
        // over two iterations).
        let m = machine();
        let prob = three_way();
        let st = best_grid_time(&m, AlgKind::Sthosvd, &prob, 4096).seconds;
        let hooi = best_grid_time(&m, AlgKind::HooiDt, &prob, 4096).seconds;
        let ratio = hooi / st;
        assert!(
            (1.2..4.0).contains(&ratio),
            "HOOI-DT/STHOSVD at scale: {ratio}"
        );
    }

    #[test]
    fn four_way_sthosvd_scales_much_further() {
        // Fig. 2 (bottom): with n = 560 the sequential EVD is tiny, so
        // STHOSVD scales to thousands of cores (paper: 937× at 8192).
        let m = machine();
        let prob = four_way();
        let t1 = best_grid_time(&m, AlgKind::Sthosvd, &prob, 1).seconds;
        let t8192 = best_grid_time(&m, AlgKind::Sthosvd, &prob, 8192).seconds;
        assert!(
            t1 / t8192 > 100.0,
            "4-way STHOSVD speedup at 8192: {}",
            t1 / t8192
        );
    }

    #[test]
    fn four_way_hosi_dt_beats_sthosvd_modestly() {
        // Fig. 2 (bottom): best HOSI-DT ≈ 1.5× faster than best STHOSVD.
        let m = machine();
        let prob = four_way();
        let ps: Vec<usize> = (0..14).map(|k| 1usize << k).collect();
        let best = |alg| {
            strong_scaling(&m, alg, &prob, &ps)
                .into_iter()
                .map(|s| s.seconds)
                .fold(f64::INFINITY, f64::min)
        };
        let st = best(AlgKind::Sthosvd);
        let hd = best(AlgKind::HosiDt);
        let ratio = st / hd;
        assert!(
            (1.05..6.0).contains(&ratio),
            "HOSI-DT should win modestly on the 4-way problem: {ratio}"
        );
    }

    #[test]
    fn best_grid_for_sthosvd_avoids_splitting_mode_1() {
        let m = machine();
        let prob = three_way();
        let pt = best_grid_time(&m, AlgKind::Sthosvd, &prob, 64);
        assert_eq!(
            pt.grid[0], 1,
            "best STHOSVD grid should have P1=1: {:?}",
            pt.grid
        );
    }

    #[test]
    fn grids_enumeration_counts() {
        assert_eq!(grids(8, 3).len(), 10);
        assert_eq!(grids(1, 4).len(), 1);
    }
}
