//! Analytic performance model — Tables 1 and 2 of the paper, executable.
//!
//! The container this reproduction runs in has one core; the paper's
//! strong-scaling evaluation (Figs. 2–3) spans 1…8192 cores of NERSC
//! Perlmutter. Per the substitution policy (DESIGN.md §6), those curves
//! are regenerated from this model:
//!
//! - per-phase **flop counts** implement the Table 1 expressions
//!   (exact partial sums rather than just the leading terms);
//! - per-phase **communication volumes** implement the grid-aware Table 2
//!   expressions;
//! - a [`Machine`] converts counts into seconds with an α–β network model,
//!   a *sequential* rate for the redundant EVD/QR factorizations (this is
//!   what produces STHOSVD's scaling plateau for large `n`), and a
//!   roofline `max(flops/rate, bytes/bandwidth)` per node that produces
//!   the single-node memory-bandwidth saturation the paper reports for
//!   the HOOI variants at small ranks.
//!
//! The model's constants can be calibrated from measured kernel runs (see
//! `Machine::calibrated`), and the Table 1/2 *count* formulas themselves
//! are validated against the workspace's measured flop counters and
//! message-byte counters in the `table1`/`table2` harness binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costs;
pub mod machine;
pub mod memory;
pub mod scaling;

pub use costs::{algorithm_cost, AlgKind, CostBreakdown, PhaseCost, Problem};
pub use machine::Machine;
pub use memory::{admit, estimate_peak, Admission, MemEstimate, MemProblem, ADMISSION_MARGIN};
pub use scaling::{best_grid_time, strong_scaling, ScalingPoint};
