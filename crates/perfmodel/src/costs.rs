//! Flop and word counts per algorithm phase (Tables 1 and 2).

/// The problem the model is evaluated on: a cubic `d`-way tensor of
/// dimension `n` compressed to ranks `r` (the paper's simplifying
/// assumption for its cost analysis).
#[derive(Clone, Copy, Debug)]
pub struct Problem {
    /// Tensor dimension per mode.
    pub n: f64,
    /// Tucker rank per mode.
    pub r: f64,
    /// Number of modes.
    pub d: usize,
    /// HOOI iteration count ℓ (ignored by STHOSVD).
    pub iters: usize,
}

impl Problem {
    /// Convenience constructor.
    pub fn new(n: usize, r: usize, d: usize, iters: usize) -> Problem {
        Problem {
            n: n as f64,
            r: r as f64,
            d,
            iters,
        }
    }
}

/// The algorithms of the paper's comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgKind {
    /// Sequentially truncated HOSVD (baseline).
    Sthosvd,
    /// HOOI with direct multi-TTMs and Gram+EVD.
    Hooi,
    /// HOOI with dimension trees and Gram+EVD.
    HooiDt,
    /// HOOI with direct multi-TTMs and subspace iteration.
    Hosi,
    /// HOOI with dimension trees and subspace iteration.
    HosiDt,
}

impl AlgKind {
    /// All algorithms, in the paper's plotting order.
    pub const ALL: [AlgKind; 5] = [
        AlgKind::Sthosvd,
        AlgKind::Hooi,
        AlgKind::HooiDt,
        AlgKind::Hosi,
        AlgKind::HosiDt,
    ];

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            AlgKind::Sthosvd => "STHOSVD",
            AlgKind::Hooi => "HOOI",
            AlgKind::HooiDt => "HOOI-DT",
            AlgKind::Hosi => "HOSI",
            AlgKind::HosiDt => "HOSI-DT",
        }
    }

    /// True for the dimension-tree variants.
    pub fn uses_dim_tree(self) -> bool {
        matches!(self, AlgKind::HooiDt | AlgKind::HosiDt)
    }

    /// True for the subspace-iteration variants.
    pub fn uses_subspace_iter(self) -> bool {
        matches!(self, AlgKind::Hosi | AlgKind::HosiDt)
    }
}

/// Costs of one named phase.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseCost {
    /// Phase label ("TTM", "Gram", "EVD", "SI", "QR", "CoreAnalysis").
    pub label: &'static str,
    /// Flops that parallelize over `P` ranks.
    pub parallel_flops: f64,
    /// Flops executed redundantly/sequentially on one critical path
    /// (the sequential EVD and QR factorizations).
    pub sequential_flops: f64,
    /// Words moved on the critical path (Table 2 bandwidth terms).
    pub words: f64,
    /// Messages on the critical path (latency terms; collective trees are
    /// charged `log₂ P` per operation).
    pub messages: f64,
    /// Words of memory traffic per full pass over the operands, total
    /// across ranks (drives the roofline bandwidth bound).
    pub touched_words: f64,
    /// The portion of `words` that the `Overlap on` pipeline can hide
    /// behind slab-local compute: `(S − 1)/S` of a slabbed collective's
    /// words for an `S`-slab pipeline (S = 4 for the TTM reduce-scatter,
    /// S = 2 for the SI iterate allreduce; DESIGN.md §17). Zero for
    /// phases with no pipelined collective.
    pub overlappable_words: f64,
}

/// A full per-phase cost breakdown.
#[derive(Clone, Debug)]
pub struct CostBreakdown {
    /// The phases in execution order.
    pub phases: Vec<PhaseCost>,
}

impl CostBreakdown {
    /// Total parallel flops.
    pub fn parallel_flops(&self) -> f64 {
        self.phases.iter().map(|p| p.parallel_flops).sum()
    }

    /// Total sequential flops.
    pub fn sequential_flops(&self) -> f64 {
        self.phases.iter().map(|p| p.sequential_flops).sum()
    }

    /// Total words communicated.
    pub fn words(&self) -> f64 {
        self.phases.iter().map(|p| p.words).sum()
    }

    /// Critical-path words with comm/compute overlap credited:
    /// `words() − efficiency · Σ overlappable_words`, where `efficiency`
    /// ∈ [0, 1] (clamped) is the fraction of the hideable traffic that
    /// actually disappears behind compute — 1.0 models a perfectly
    /// compute-bound pipeline, 0.0 recovers the blocking model.
    pub fn words_with_overlap(&self, efficiency: f64) -> f64 {
        let eff = efficiency.clamp(0.0, 1.0);
        self.phases
            .iter()
            .map(|p| p.words - eff * p.overlappable_words.min(p.words))
            .sum()
    }
}

fn log2p(p: f64) -> f64 {
    if p <= 1.0 {
        0.0
    } else {
        p.log2().ceil()
    }
}

/// Evaluates the Table 1 + Table 2 cost expressions for `alg` on `prob`
/// over the processor grid `grid` (`Π grid = P`).
pub fn algorithm_cost(alg: AlgKind, prob: &Problem, grid: &[usize]) -> CostBreakdown {
    assert_eq!(grid.len(), prob.d, "grid order must match tensor order");
    let p: f64 = grid.iter().map(|&g| g as f64).product();
    let n = prob.n;
    let r = prob.r;
    let d = prob.d;
    let df = d as f64;
    let nd = n.powi(d as i32);
    let p1 = grid[0] as f64;
    let p2 = if d > 1 { grid[1] as f64 } else { 1.0 };
    let pd = grid[d - 1] as f64;

    let mut phases = Vec::new();
    match alg {
        AlgKind::Sthosvd => {
            // Gram: Σ_j r^{j-1} n^{d-j+2} / P  (j = 1..d, 1-indexed).
            let mut gram_flops = 0.0;
            let mut ttm_flops = 0.0;
            let mut llsv_words = 0.0;
            let mut ttm_words = 0.0;
            let mut touched = 0.0;
            for j in 1..=d {
                let y_entries = r.powi(j as i32 - 1) * n.powi((d - j + 1) as i32);
                gram_flops += y_entries * n / p;
                ttm_flops += 2.0 * y_entries * r / p;
                // Redistribution to 1D columns along the j-th grid dim +
                // Gram allreduce.
                let pj = grid[j - 1] as f64;
                llsv_words += y_entries / p * (pj - 1.0) / pj + n * n;
                // TTM reduce-scatter along the j-th grid dim.
                ttm_words += y_entries * (r / n) / p * (pj - 1.0);
                touched += 2.0 * y_entries;
            }
            phases.push(PhaseCost {
                label: "Gram",
                parallel_flops: gram_flops,
                sequential_flops: 0.0,
                words: llsv_words,
                messages: 3.0 * df * log2p(p),
                touched_words: touched,
                overlappable_words: 0.0,
            });
            phases.push(PhaseCost {
                label: "EVD",
                parallel_flops: 0.0,
                sequential_flops: df * 4.0 * n.powi(3),
                words: 0.0,
                messages: 0.0,
                touched_words: df * n * n,
                overlappable_words: 0.0,
            });
            phases.push(PhaseCost {
                label: "TTM",
                parallel_flops: ttm_flops,
                sequential_flops: 0.0,
                words: ttm_words,
                messages: df * log2p(p),
                touched_words: touched,
                // 4-slab pipelined reduce-scatter (Overlap on).
                overlappable_words: 0.75 * ttm_words,
            });
        }
        _ => {
            let iters = prob.iters as f64;
            // --- multi-TTM phase ---
            let (ttm_flops, ttm_words, ttm_touched) = if alg.uses_dim_tree() {
                // 4 Σ_{i=1..⌈d/2⌉} r^i n^{d-i+1} / P  (the two root
                // branches dominate; deeper levels are lower order but we
                // include a 2× fudge-free partial sum of both branches).
                let mut f = 0.0;
                for i in 1..=d.div_ceil(2) {
                    f += 4.0 * r.powi(i as i32) * n.powi((d - i + 1) as i32) / p;
                }
                let words = r * nd / n / p * (p1 + pd - 2.0);
                (f, words, 4.0 * nd)
            } else {
                // d multi-TTMs, each 2 Σ_{i=1..d-1} r^i n^{d-i+1} / P.
                let mut one = 0.0;
                for i in 1..=(d - 1) {
                    one += 2.0 * r.powi(i as i32) * n.powi((d - i + 1) as i32) / p;
                }
                let f = df * one;
                let words = (df - 1.0) * r * nd / n / p * (p1 - 1.0) + r * nd / n / p * (p2 - 1.0);
                (f, words, 2.0 * df * nd)
            };
            phases.push(PhaseCost {
                label: "TTM",
                parallel_flops: iters * ttm_flops,
                sequential_flops: 0.0,
                words: iters * ttm_words,
                messages: iters * df * df * log2p(p),
                touched_words: iters * ttm_touched,
                // 4-slab pipelined reduce-scatter (Overlap on).
                overlappable_words: 0.75 * iters * ttm_words,
            });

            if alg.uses_subspace_iter() {
                // --- subspace iteration: TTM + contraction, then QR ---
                let rd = r.powi(d as i32);
                let si_flops = 4.0 * df * n * rd / p;
                let sum_pi_minus_1: f64 = grid.iter().map(|&g| g as f64 - 1.0).sum();
                let si_words = rd / p * sum_pi_minus_1 + 2.0 * df * n * r;
                phases.push(PhaseCost {
                    label: "SI",
                    parallel_flops: iters * si_flops,
                    sequential_flops: 0.0,
                    words: iters * si_words,
                    messages: iters * 3.0 * df * log2p(p),
                    touched_words: iters * 2.0 * df * n * r.powi(d as i32 - 1),
                    // 2-slab pipelined iterate allreduce hides half of
                    // the 2·d·n·r reduce+broadcast term (Overlap on).
                    overlappable_words: iters * df * n * r,
                });
                phases.push(PhaseCost {
                    label: "QR",
                    parallel_flops: 0.0,
                    // O(d·n·r²) in the paper; coefficient 8 matches this
                    // implementation's QRCP + explicit thin-Q formation.
                    sequential_flops: iters * df * 8.0 * n * r * r,
                    words: 0.0,
                    messages: 0.0,
                    touched_words: iters * df * n * r,
                    overlappable_words: 0.0,
                });
            } else {
                // --- Gram + EVD LLSV ---
                let gram_flops = df * n * n * r.powi(d as i32 - 1) / p;
                let sum_frac: f64 = grid.iter().map(|&g| (g as f64 - 1.0) / g as f64).sum();
                let gram_words = n * r.powi(d as i32 - 1) / p * sum_frac + df * n * n;
                phases.push(PhaseCost {
                    label: "Gram",
                    parallel_flops: iters * gram_flops,
                    sequential_flops: 0.0,
                    words: iters * gram_words,
                    messages: iters * 3.0 * df * log2p(p),
                    touched_words: iters * df * n * r.powi(d as i32 - 1),
                    overlappable_words: 0.0,
                });
                phases.push(PhaseCost {
                    label: "EVD",
                    parallel_flops: 0.0,
                    sequential_flops: iters * df * 4.0 * n.powi(3),
                    words: 0.0,
                    messages: 0.0,
                    touched_words: iters * df * n * n,
                    overlappable_words: 0.0,
                });
            }

            // --- core analysis (rank-adaptive overhead) ---
            let rd = r.powi(d as i32);
            phases.push(PhaseCost {
                label: "CoreAnalysis",
                parallel_flops: 0.0,
                sequential_flops: iters * df * rd,
                words: iters * rd,
                messages: iters * log2p(p),
                touched_words: iters * rd,
                overlappable_words: 0.0,
            });
        }
    }
    CostBreakdown { phases }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flops_of(alg: AlgKind, prob: &Problem, grid: &[usize]) -> f64 {
        let c = algorithm_cost(alg, prob, grid);
        c.parallel_flops() + c.sequential_flops()
    }

    #[test]
    fn sthosvd_dominated_by_first_gram() {
        // n ≫ r: Gram ≈ n^{d+1}/P.
        let prob = Problem::new(1000, 10, 3, 1);
        let c = algorithm_cost(AlgKind::Sthosvd, &prob, &[1, 1, 1]);
        let gram = c.phases.iter().find(|p| p.label == "Gram").unwrap();
        let expect = 1000f64.powi(4);
        assert!(
            (gram.parallel_flops / expect - 1.0).abs() < 0.02,
            "{} vs {expect}",
            gram.parallel_flops
        );
    }

    #[test]
    fn dim_tree_saves_factor_d_over_2_in_ttm() {
        let prob = Problem::new(500, 10, 4, 1);
        let direct = algorithm_cost(AlgKind::Hooi, &prob, &[1, 1, 1, 1]);
        let tree = algorithm_cost(AlgKind::HooiDt, &prob, &[1, 1, 1, 1]);
        let fd = direct
            .phases
            .iter()
            .find(|p| p.label == "TTM")
            .unwrap()
            .parallel_flops;
        let ft = tree
            .phases
            .iter()
            .find(|p| p.label == "TTM")
            .unwrap()
            .parallel_flops;
        let ratio = fd / ft;
        // Theory: d/2 = 2 to leading order.
        assert!((ratio - 2.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn subspace_iteration_removes_cubic_sequential_term() {
        let prob = Problem::new(2000, 10, 3, 2);
        let hooi = algorithm_cost(AlgKind::Hooi, &prob, &[1, 1, 1]);
        let hosi = algorithm_cost(AlgKind::Hosi, &prob, &[1, 1, 1]);
        assert!(hooi.sequential_flops() > 100.0 * hosi.sequential_flops());
    }

    #[test]
    fn hosi_dt_cheaper_than_sthosvd_when_n_over_r_large() {
        // The paper's headline: n/r > 8 (with ℓ = 2) favors HOSI-DT.
        let prob = Problem::new(1000, 20, 3, 2); // n/r = 50
        let st = flops_of(AlgKind::Sthosvd, &prob, &[1, 1, 1]);
        let hd = flops_of(AlgKind::HosiDt, &prob, &[1, 1, 1]);
        assert!(hd < st, "HOSI-DT {hd} vs STHOSVD {st}");

        // And the reverse at small dimension reduction.
        let prob2 = Problem::new(100, 60, 3, 2); // n/r < 2
        let st2 = flops_of(AlgKind::Sthosvd, &prob2, &[1, 1, 1]);
        let hd2 = flops_of(AlgKind::HosiDt, &prob2, &[1, 1, 1]);
        assert!(hd2 > st2, "HOSI-DT {hd2} vs STHOSVD {st2}");
    }

    #[test]
    fn sthosvd_prefers_p1_equal_1_grids() {
        let prob = Problem::new(1000, 10, 3, 1);
        let bad = algorithm_cost(AlgKind::Sthosvd, &prob, &[8, 1, 1]).words();
        let good = algorithm_cost(AlgKind::Sthosvd, &prob, &[1, 1, 8]).words();
        assert!(
            good < bad,
            "P1=1 grid should communicate less: {good} vs {bad}"
        );
    }

    #[test]
    fn dim_tree_prefers_p1_pd_equal_1_grids() {
        let prob = Problem::new(500, 10, 4, 2);
        let bad = algorithm_cost(AlgKind::HosiDt, &prob, &[4, 1, 1, 4]).words();
        let good = algorithm_cost(AlgKind::HosiDt, &prob, &[1, 4, 4, 1]).words();
        assert!(good < bad, "{good} vs {bad}");
    }

    #[test]
    fn overlap_credit_reduces_words_but_never_below_zero() {
        let prob = Problem::new(800, 16, 3, 2);
        for alg in AlgKind::ALL {
            let c = algorithm_cost(alg, &prob, &[1, 2, 4]);
            let blocking = c.words();
            // Zero efficiency recovers the blocking model exactly.
            assert_eq!(c.words_with_overlap(0.0), blocking, "{}", alg.name());
            // Full efficiency strictly helps every algorithm (all of them
            // run TTMs) and stays non-negative; out-of-range efficiency
            // is clamped, not amplified.
            let overlapped = c.words_with_overlap(1.0);
            assert!(
                overlapped < blocking && overlapped >= 0.0,
                "{}: {overlapped} vs {blocking}",
                alg.name()
            );
            assert_eq!(c.words_with_overlap(5.0), overlapped, "{}", alg.name());
            // Only TTM/SI phases carry an overlap term.
            for ph in &c.phases {
                if ph.label != "TTM" && ph.label != "SI" {
                    assert_eq!(ph.overlappable_words, 0.0, "{}", ph.label);
                }
            }
        }
    }

    #[test]
    fn costs_scale_down_with_p() {
        let prob = Problem::new(800, 16, 3, 2);
        for alg in AlgKind::ALL {
            let c1 = algorithm_cost(alg, &prob, &[1, 1, 1]).parallel_flops();
            let c8 = algorithm_cost(alg, &prob, &[1, 2, 4]).parallel_flops();
            assert!(
                (c1 / c8 - 8.0).abs() < 1e-6,
                "{}: parallel flops must scale 1/P",
                alg.name()
            );
        }
    }
}
