//! Per-rank peak-memory model and admission control.
//!
//! The distributed RA-HOSI-DT working set is dominated by a handful of
//! structurally known buffers: the resident tensor block, its buddy
//! replicas, the replicated factor matrices, the gathered core, and the
//! TTM/Gram staging slabs. This module turns those shapes into a
//! per-rank **peak estimate in bytes**, evaluated per rung of the
//! graceful-degradation ladder (rung 1 chunks the TTM slab, rung 2
//! streams the Gram assembly — see `ratucker::recover`), and an
//! **admission** decision: given a `--mem-budget`, either the run is
//! admitted at the cheapest rung whose projected peak fits, or it is
//! rejected up front with the shortfall — *before* any rank allocates a
//! byte or a collective is posted.
//!
//! The estimate is intentionally an upper bound with slack rather than
//! an exact accounting: transient copies (redistribution staging,
//! checkpoint serialization, `hcat` temporaries) ride inside the
//! documented band (see `DESIGN.md` §14) instead of being modeled term
//! by term. The validation test in `tests/mem_band.rs` pins the band:
//! the margin-adjusted prediction must bound the measured ledger
//! high-water mark from above without exceeding `BAND` times it.

/// The shape of a distributed run, as the memory model sees it.
#[derive(Clone, Debug)]
pub struct MemProblem {
    /// Global tensor dimensions.
    pub dims: Vec<usize>,
    /// Processor grid (same order as `dims`).
    pub grid: Vec<usize>,
    /// Worst-case per-mode Tucker ranks the run may reach (for a
    /// rank-adaptive run: the growth-capped ranks, not the initial
    /// ones).
    pub ranks: Vec<usize>,
    /// Buddy-replication degree `k` (each rank stores `k` peer blocks).
    pub buddy_degree: usize,
    /// Whether ABFT checksums ride the collectives (one extra row/slot
    /// per message — negligible, kept for completeness).
    pub abft: bool,
    /// Bytes per scalar element (8 for `f64`).
    pub elem_bytes: usize,
}

impl MemProblem {
    fn local_dim(&self, j: usize) -> usize {
        self.dims[j].div_ceil(self.grid[j])
    }

    fn block_entries(&self) -> u64 {
        (0..self.dims.len())
            .map(|j| self.local_dim(j) as u64)
            .product()
    }
}

/// Per-component peak estimate, in bytes. `peak()` combines them the
/// way the sweep does: everything resident plus the largest staging
/// phase (TTM and Gram staging never coexist).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemEstimate {
    /// The rank's resident tensor block.
    pub block: u64,
    /// The caller-retained input copy (the driver clones the block).
    pub input_copy: u64,
    /// Buddy replicas of `degree` predecessor blocks.
    pub replicas: u64,
    /// Factor matrices, replicated on every rank.
    pub factors: u64,
    /// The gathered (replicated) core at the threshold test.
    pub core: u64,
    /// Largest TTM packing/reduction slab across modes, at this rung.
    pub ttm_staging: u64,
    /// Largest Gram send/assembly staging across modes, at this rung.
    pub gram_staging: u64,
}

impl MemEstimate {
    /// The projected per-rank peak: all resident state plus the larger
    /// of the two (mutually exclusive) staging phases.
    pub fn peak(&self) -> u64 {
        self.block
            + self.input_copy
            + self.replicas
            + self.factors
            + self.core
            + self.ttm_staging.max(self.gram_staging)
    }
}

/// Evaluates the per-rank peak estimate at the given degradation rung.
pub fn estimate_peak(prob: &MemProblem, rung: u8) -> MemEstimate {
    let d = prob.dims.len();
    assert_eq!(prob.grid.len(), d, "grid order must match tensor order");
    assert_eq!(prob.ranks.len(), d, "ranks order must match tensor order");
    let e = prob.elem_bytes as u64;
    let block = prob.block_entries() * e;

    let factors: u64 = (0..d).map(|j| (prob.dims[j] * prob.ranks[j]) as u64).sum();
    let core: u64 = (0..d).map(|j| prob.ranks[j] as u64).product();

    // Per-mode TTM slab: the packed partial result spans local_left ×
    // r_j × local_right entries (the output mode is global width before
    // the reduce-scatter). Rung 1 reduces one destination block at a
    // time, bounding the slab by its largest 1/p_j chunk — the reduced
    // block this rank keeps is another chunk of the same size.
    let mut ttm_staging = 0u64;
    // Per-mode Gram staging: the unfolding columns of the fully
    // contracted-by-others tensor, C_j = Π_{k≠j} r_k of them, staged
    // once for the send and assembled into an n_j × (C_j / p_j) scratch
    // (rung 2 streams the scratch in 8 batches) plus the n_j² Gram.
    let mut gram_staging = 0u64;
    for j in 0..d {
        let lines = prob.block_entries() / prob.local_dim(j) as u64;
        let slab = lines * prob.ranks[j] as u64;
        let pj = prob.grid[j] as u64;
        let ttm = if rung >= 1 {
            2 * slab.div_ceil(pj)
        } else {
            slab + slab.div_ceil(pj)
        };
        ttm_staging = ttm_staging.max(ttm * e);

        let cols: u64 = (0..d)
            .filter(|&k| k != j)
            .map(|k| prob.ranks[k] as u64)
            .product();
        let my_cols = cols.div_ceil(pj);
        let nj = prob.dims[j] as u64;
        let scratch_cols = if rung >= 2 {
            my_cols.div_ceil(8).max(1)
        } else {
            my_cols.max(1)
        };
        // Send staging (local rows × all columns) + received blocks
        // (all rows × my columns) + assembly scratch + Gram matrix.
        let gram = prob.local_dim(j) as u64 * cols + nj * my_cols + nj * scratch_cols + nj * nj;
        gram_staging = gram_staging.max(gram * e);
    }

    MemEstimate {
        block,
        input_copy: block,
        replicas: prob.buddy_degree as u64 * block,
        factors: factors * e,
        core: core * e,
        ttm_staging,
        gram_staging,
    }
}

/// Safety margin applied on top of the structural estimate before a run
/// is admitted: transient copies (redistribution staging, checkpoint
/// serialization, `hcat`/orthonormalization temporaries) are not
/// modeled term by term and must fit in the slack.
pub const ADMISSION_MARGIN: f64 = 1.25;

/// The admission decision for a budgeted run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The run fits: start at `start_rung` (the cheapest rung whose
    /// projected peak, with margin, fits the budget) with `headroom`
    /// bytes to spare.
    Admit {
        /// Degradation rung to install before the first sweep.
        start_rung: u8,
        /// Budget minus the margin-adjusted projected peak.
        headroom: u64,
    },
    /// Even the highest rung does not fit: the run is refused before
    /// any allocation. `required` is the margin-adjusted peak of the
    /// cheapest mode.
    Reject {
        /// Bytes the cheapest degradation mode would need.
        required: u64,
        /// The offered budget.
        budget: u64,
    },
}

/// Admission control: projects the peak at every rung of the ladder and
/// admits the run at the first (cheapest) rung that fits `budget`,
/// with [`ADMISSION_MARGIN`] slack. Rung 3 (frozen rank growth) is not
/// proposed at admission — freezing is only meaningful after growth has
/// been observed to not fit, which the online ladder handles; admission
/// evaluates rungs 0–2.
pub fn admit(prob: &MemProblem, budget: u64) -> Admission {
    let mut cheapest = u64::MAX;
    for rung in 0..=2u8 {
        let required = (estimate_peak(prob, rung).peak() as f64 * ADMISSION_MARGIN) as u64;
        cheapest = cheapest.min(required);
        if required <= budget {
            return Admission::Admit {
                start_rung: rung,
                headroom: budget - required,
            };
        }
    }
    Admission::Reject {
        required: cheapest,
        budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prob() -> MemProblem {
        MemProblem {
            dims: vec![12, 10, 8],
            grid: vec![2, 2, 1],
            ranks: vec![6, 6, 4],
            buddy_degree: 1,
            abft: false,
            elem_bytes: 8,
        }
    }

    #[test]
    fn higher_rungs_project_smaller_peaks() {
        let p = prob();
        let e0 = estimate_peak(&p, 0);
        let e1 = estimate_peak(&p, 1);
        let e2 = estimate_peak(&p, 2);
        assert!(e0.peak() >= e1.peak() && e1.peak() >= e2.peak());
        assert!(
            e0.ttm_staging > e1.ttm_staging,
            "rung 1 chunks the TTM slab: {} vs {}",
            e0.ttm_staging,
            e1.ttm_staging
        );
        assert!(
            e1.gram_staging > e2.gram_staging,
            "rung 2 streams the Gram scratch: {} vs {}",
            e1.gram_staging,
            e2.gram_staging
        );
    }

    #[test]
    fn admission_picks_the_cheapest_fitting_rung() {
        let p = prob();
        let r0 = (estimate_peak(&p, 0).peak() as f64 * ADMISSION_MARGIN) as u64;
        let r2 = (estimate_peak(&p, 2).peak() as f64 * ADMISSION_MARGIN) as u64;
        // Generous budget → rung 0.
        match admit(&p, 2 * r0) {
            Admission::Admit { start_rung: 0, .. } => {}
            other => panic!("expected rung-0 admit, got {other:?}"),
        }
        // Budget between rung-2 and rung-0 needs → a degraded admit.
        if r2 < r0 {
            match admit(&p, (r0 + r2) / 2) {
                Admission::Admit { start_rung, .. } => assert!(start_rung >= 1),
                other => panic!("expected degraded admit, got {other:?}"),
            }
        }
        // Budget below every rung → reject with the shortfall visible.
        match admit(&p, r2 / 4) {
            Admission::Reject { required, budget } => {
                assert!(required > budget);
                assert_eq!(budget, r2 / 4);
            }
            other => panic!("expected reject, got {other:?}"),
        }
    }

    #[test]
    fn peak_scales_down_with_the_grid() {
        let small = prob();
        let mut big = prob();
        big.grid = vec![1, 1, 1];
        assert!(
            estimate_peak(&big, 0).peak() > estimate_peak(&small, 0).peak(),
            "more ranks per mode must shrink the per-rank block"
        );
    }
}
