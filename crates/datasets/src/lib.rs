//! Scientific-simulation stand-in datasets.
//!
//! The paper evaluates on three simulation datasets that are not
//! shippable here (115 GB – 4.4 TB): **Miranda** (3-way fluid-flow density
//! ratios, single precision), **HCCI** (4-way combustion, 33-variable
//! mode, double precision), and **SP** (5-way planar-flame, 11-variable
//! mode, double precision). Per the substitution policy in DESIGN.md §6,
//! this crate generates laptop-scale tensors that preserve the properties
//! the experiments exercise:
//!
//! - per-mode singular-value spectra with controlled exponential decay
//!   (smooth spatial fields → fast decay; variable/time modes → slower),
//!   so the error-specified algorithms face the same high/mid/low
//!   compression regimes at ε ∈ {0.1, 0.05, 0.01};
//! - heterogeneous per-variable magnitudes in the variable mode (physical
//!   quantities in different units), which stresses rank selection;
//! - a broadband noise floor, so ranks stay finite at tight tolerances.
//!
//! Construction: a Tucker-form tensor whose core entries are Gaussian
//! scaled by `exp(−Σ_k γ_k i_k)` (giving mode-`k` spectra that decay at
//! rate `γ_k`), with random orthonormal factors, optional per-slice
//! variable scaling, plus relative Gaussian noise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use ratucker_tensor::dense::DenseTensor;
use ratucker_tensor::random::{normal_tensor, random_orthonormal, standard_normal};
use ratucker_tensor::scalar::Scalar;
use ratucker_tensor::shape::Shape;
use ratucker_tensor::ttm::{ttm, Transpose};

/// Generator parameters for a stand-in dataset.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Human-readable name (used by the experiment harness).
    pub name: String,
    /// Tensor dimensions.
    pub dims: Vec<usize>,
    /// Latent core ranks (spectra are supported on this many directions
    /// per mode before hitting the noise floor).
    pub core_ranks: Vec<usize>,
    /// Per-mode spectral decay rates γ_k (larger → more compressible).
    pub decay: Vec<f64>,
    /// Optional `(mode, scales)`: multiply hyper-slices of the given mode
    /// by these magnitudes (variable modes with heterogeneous units).
    pub variable_scales: Option<(usize, Vec<f64>)>,
    /// Relative broadband noise level.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Generates the dataset tensor.
    pub fn build<T: Scalar>(&self) -> DenseTensor<T> {
        assert_eq!(self.dims.len(), self.core_ranks.len());
        assert_eq!(self.dims.len(), self.decay.len());
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Structured core: Gaussian entries damped exponentially in each
        // mode index → mode-k unfolding spectra decay at rate decay[k].
        let core_shape = Shape::new(&self.core_ranks);
        let decay = self.decay.clone();
        let core: DenseTensor<T> = {
            let mut c = DenseTensor::zeros(core_shape.clone());
            let data = c.data_mut();
            for (off, idx) in core_shape.indices().enumerate() {
                let damp: f64 = idx
                    .iter()
                    .zip(&decay)
                    .map(|(&i, &g)| -g * i as f64)
                    .sum::<f64>()
                    .exp();
                let z: f64 = standard_normal(&mut rng);
                data[off] = T::from_f64(z * damp);
            }
            c
        };

        // Orthonormal factors lift the core to the full dimensions.
        let mut x = core;
        for (k, (&n, &r)) in self.dims.iter().zip(&self.core_ranks).enumerate() {
            assert!(r <= n, "core rank exceeds dimension in mode {k}");
            let u: ratucker_tensor::matrix::Matrix<T> = random_orthonormal(n, r, &mut rng);
            x = ttm(&x, k, &u, Transpose::No);
        }

        // Heterogeneous variable magnitudes.
        if let Some((mode, scales)) = &self.variable_scales {
            assert_eq!(
                scales.len(),
                self.dims[*mode],
                "one scale per slice of the variable mode"
            );
            scale_mode_slices(&mut x, *mode, scales);
        }

        // Broadband noise floor.
        if self.noise > 0.0 {
            let mut nrng = StdRng::seed_from_u64(self.seed ^ 0xabcd_ef01_2345_6789);
            let mut noise: DenseTensor<T> = normal_tensor(x.shape().clone(), &mut nrng);
            let scale = self.noise * x.norm().to_f64() / noise.norm().to_f64();
            noise.scale(T::from_f64(scale));
            x.add_scaled(T::ONE, &noise);
        }
        x
    }
}

/// Multiplies each mode-`mode` hyper-slice `i` by `scales[i]`.
fn scale_mode_slices<T: Scalar>(x: &mut DenseTensor<T>, mode: usize, scales: &[f64]) {
    let left = x.shape().left(mode);
    let n = x.dim(mode);
    let right = x.shape().right(mode);
    let data = x.data_mut();
    for r in 0..right {
        for (i, &sc) in scales.iter().enumerate().take(n) {
            let s = T::from_f64(sc);
            let base = (r * n + i) * left;
            for v in &mut data[base..base + left] {
                *v *= s;
            }
        }
    }
}

/// Miranda-like: 3-way single-precision smooth fluid-flow field.
/// Highly compressible — fast spectral decay in all three (spatial) modes,
/// mirroring the 82×-speedup high-compression regime of §4.2.1.
pub fn miranda_like(scale: usize) -> DatasetSpec {
    let n = 16 * scale;
    DatasetSpec {
        name: format!("miranda-like-{n}x{n}x{n}"),
        dims: vec![n, n, n],
        core_ranks: vec![n / 2, n / 2, n / 2],
        decay: vec![0.45, 0.45, 0.45],
        variable_scales: None,
        noise: 5e-4,
        seed: 0x4d49_5241, // "MIRA"
    }
}

/// HCCI-like: 4-way double-precision combustion field with a 33-variable
/// mode (heterogeneous magnitudes) and a time mode (§4.2.2). Spatial
/// modes are moderately compressible; the variable mode barely is.
pub fn hcci_like(scale: usize) -> DatasetSpec {
    let n = 12 * scale;
    let nt = 8 * scale;
    let nv = 33;
    // Log-uniform variable magnitudes over ~4 decades.
    let scales: Vec<f64> = (0..nv)
        .map(|i| 10f64.powf(-4.0 * (i as f64) / (nv as f64 - 1.0)))
        .collect();
    // Decay rates chosen so the per-mode dimension reduction n_k/r_k of
    // the scaled-down stand-in matches the paper's HCCI regime (spatial
    // modes compress ~10x at ε = 0.1; the 33-variable mode barely
    // compresses; time compresses moderately).
    DatasetSpec {
        name: format!("hcci-like-{n}x{n}x{nv}x{nt}"),
        dims: vec![n, n, nv, nt],
        core_ranks: vec![n * 3 / 4, n * 3 / 4, nv, nt * 3 / 4],
        decay: vec![0.30, 0.30, 0.05, 0.20],
        variable_scales: Some((2, scales)),
        noise: 1e-4,
        seed: 0x4843_4349, // "HCCI"
    }
}

/// SP-like: 5-way double-precision planar-flame field with an 11-variable
/// mode and a time mode (§4.2.2).
pub fn sp_like(scale: usize) -> DatasetSpec {
    let n = 8 * scale;
    let nt = 6 * scale;
    let nv = 11;
    let scales: Vec<f64> = (0..nv)
        .map(|i| 10f64.powf(-3.0 * (i as f64) / (nv as f64 - 1.0)))
        .collect();
    // Decay rates matched to the paper's SP regime at the stand-in scale
    // (see the HCCI note above).
    DatasetSpec {
        name: format!("sp-like-{n}x{n}x{n}x{nv}x{nt}"),
        dims: vec![n, n, n, nv, nt],
        core_ranks: vec![n * 3 / 4, n * 3 / 4, n * 3 / 4, nv, nt * 3 / 4],
        decay: vec![0.32, 0.32, 0.32, 0.08, 0.22],
        variable_scales: Some((3, scales)),
        noise: 1e-4,
        seed: 0x5350_5350, // "SPSP"
    }
}

/// The paper's three error tolerances: high / mid / low compression.
pub const TOLERANCES: [f64; 3] = [0.1, 0.05, 0.01];

/// Labels matching [`TOLERANCES`].
pub const TOLERANCE_LABELS: [&str; 3] = ["high", "mid", "low"];

#[cfg(test)]
mod tests {
    use super::*;
    use ratucker::sthosvd::{sthosvd, SthosvdTruncation};

    #[test]
    fn miranda_like_is_highly_compressible() {
        let x = miranda_like(2).build::<f32>();
        let res = sthosvd(&x, &SthosvdTruncation::RelError(0.1));
        assert!(res.rel_error <= 0.1);
        // High-compression regime: big dimension reduction per mode.
        let n = x.dim(0) as f64;
        for &r in &res.tucker.ranks() {
            assert!(
                (n / r as f64) > 3.0,
                "expected n/r > 3, got ranks {:?} for n={n}",
                res.tucker.ranks()
            );
        }
    }

    #[test]
    fn tolerance_ladder_gives_nested_storage() {
        let x = miranda_like(2).build::<f32>();
        let mut sizes = Vec::new();
        for &eps in &TOLERANCES {
            let res = sthosvd(&x, &SthosvdTruncation::RelError(eps));
            assert!(res.rel_error <= eps, "ε={eps}: {}", res.rel_error);
            sizes.push(res.tucker.storage_entries());
        }
        // Tighter tolerance → more storage.
        assert!(sizes[0] <= sizes[1] && sizes[1] <= sizes[2], "{sizes:?}");
    }

    #[test]
    fn hcci_like_variable_mode_resists_compression() {
        let x = hcci_like(2).build::<f64>();
        let res = sthosvd(&x, &SthosvdTruncation::RelError(0.05));
        let ranks = res.tucker.ranks();
        let dims = x.shape().dims().to_vec();
        // Spatial modes compress better (bigger n/r) than the variable
        // mode compresses... the variable mode keeps a large share.
        let spatial_ratio = dims[0] as f64 / ranks[0] as f64;
        assert!(spatial_ratio > 1.2, "ranks {ranks:?} dims {dims:?}");
        assert!(ranks[2] >= 1);
    }

    #[test]
    fn sp_like_builds_and_compresses() {
        let x = sp_like(1).build::<f64>();
        assert_eq!(x.order(), 5);
        let res = sthosvd(&x, &SthosvdTruncation::RelError(0.1));
        assert!(res.rel_error <= 0.1);
        assert!(res.tucker.relative_size() < 0.6);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = miranda_like(1).build::<f32>();
        let b = miranda_like(1).build::<f32>();
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn variable_scaling_changes_slice_norms() {
        let mut spec = hcci_like(1);
        spec.noise = 0.0;
        let x = spec.build::<f64>();
        // Slice 0 of the variable mode (scale 1) must dominate the last
        // slice (scale 1e-4) by orders of magnitude.
        let slice_norm = |i: usize| {
            let mut acc = 0.0f64;
            for idx in x.shape().indices() {
                if idx[2] == i {
                    let v = x.get(&idx);
                    acc += v * v;
                }
            }
            acc.sqrt()
        };
        let first = slice_norm(0);
        let last = slice_norm(32);
        assert!(first > 100.0 * last, "first {first} last {last}");
    }
}
