//! Parameter-file driven drivers, mirroring the TuckerMPI drivers of the
//! paper's artifact.
//!
//! The artifact runs
//! `srun -n 8 ./build/mpi/drivers/bin/sthosvd --parameter-file STHOSVD.cfg`;
//! here the same experiment is
//! `cargo run --release -p ratucker-cli --bin sthosvd -- --parameter-file STHOSVD.cfg`,
//! with the "MPI processes" provided by the threaded runtime (one rank
//! thread per grid cell).
//!
//! Recognized keys (artifact names, plus a few additions marked `+`):
//!
//! | key | meaning | default |
//! |---|---|---|
//! | `Print options` | echo the parsed parameters | `false` |
//! | `Print timings` | print the per-phase breakdown | `false` |
//! | `Global dims` | tensor dimensions | required |
//! | `Processor grid dims` | grid (product = rank count) | all ones |
//! | `Noise` | synthetic noise level | `1e-4` |
//! | `Construction Ranks` | synthetic ground-truth ranks | `Ranks` |
//! | `Ranks` / `Decomposition Ranks` | target / initial ranks | required unless error-specified |
//! | `SV Threshold` | STHOSVD relative error ε (0 ⇒ rank-specified) | `0` |
//! | `SVD Method` | `0` Gram+EVD, `2` subspace iteration | `0` |
//! | `Dimension Tree Memoization` | enable Alg. 4 | `false` |
//! | `HOOI-Adapt Threshold` | RA tolerance ε (0 ⇒ fixed-rank) | `0` |
//! | `HOOI max iters` | sweep cap | `2` |
//! | `HOOI Adapt core tensor gather type` | accepted for compatibility (allgather is always used) | `false` |
//! | `Rank Growth Factor` + | RA α | `1.5` |
//! | `Checkpoint dir` + | write RA sweep checkpoints here (also `--checkpoint-dir`) | none |
//! | `Checkpoint every` + | save every n-th sweep | `1` |
//! | `Resume` + | resume from the latest checkpoint (also `--resume`) | `false` |
//! | `Buddy replication` + | diskless replication degree k (also `--buddy-replication <k>`) | none |
//! | `ABFT` + | `off` / `detect` / `recover` checksums (also `--abft <mode>`) | none |
//! | `Deadline profile` + | `off` / `strict` / `lenient` per-collective deadlines (also `--deadline-profile <name>`) | `off` |
//! | `Retry` + | max retransmissions per p2p op, with exponential backoff (also `--retry <n>`) | `0` |
//! | `Straggler demotion` + | demote a rank whose induced wait exceeds this multiple of the median (also `--straggler-demotion <x>`) | off |
//! | `Overlap` + | `on` / `off` comm/compute pipelining in the distributed TTM/SI kernels (also `--overlap <mode>`); results are bit-identical either way | `on` |
//! | `Mem budget` + | per-rank memory budget in bytes, `K`/`M`/`G` suffixes accepted (also `--mem-budget <size>`); the run is admitted through the perf-model peak estimate, possibly at a degraded rung, or refused up front | none |
//! | `Threads` + | intra-rank kernel worker threads (also `--threads <n>`, `RATUCKER_THREADS` env); results are bit-identical at any setting | `1` |
//! | `Trace out` + | write a merged Chrome trace JSON here (also `--trace-out <path>`) | none |
//! | `Seed` + | RNG seed | `0` |
//! | `Precision` + | `single` / `double` | `single` |
//! | `Input file` + | raw tensor to load instead of synthetic | none |
//! | `Output prefix` + | write core/factors as `.rtt` files | none |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod params;

pub use params::{ParamError, Params};

use ratucker::checkpoint::CheckpointPolicy;
use ratucker::dist::{
    dist_hooi, dist_ra_hooi, dist_ra_hooi_checkpointed, dist_sthosvd, DistRunResult,
};
use ratucker::prelude::*;
use ratucker::{dist_ra_hooi_resilient, ResilienceConfig, ResilientOutcome};
use ratucker::{Timings, ALL_PHASES};
use ratucker_dist::{AbftMode, DistTensor, OverlapMode};
use ratucker_mpi::{CartGrid, DeadlinePolicy, RetryPolicy, Universe};
use ratucker_obs::StragglerPolicy;
use ratucker_perfmodel::{admit, Admission, MemProblem};
use ratucker_tensor::dense::DenseTensor;
use ratucker_tensor::io::IoScalar;
use ratucker_tensor::shape::Shape;

/// Which floating-point width a driver runs in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Precision {
    /// `f32` (the synthetic experiments of §4.1).
    Single,
    /// `f64` (the HCCI/SP experiments of §4.2.2).
    Double,
}

/// Parses the `Precision` key.
pub fn precision(params: &Params) -> Result<Precision, ParamError> {
    match params
        .get("Precision")
        .unwrap_or("single")
        .to_ascii_lowercase()
        .as_str()
    {
        "single" | "f32" => Ok(Precision::Single),
        "double" | "f64" => Ok(Precision::Double),
        other => Err(ParamError::Invalid {
            key: "Precision".into(),
            value: other.into(),
            expected: "single or double",
        }),
    }
}

/// Echoes the parameter file (the artifact's `Print options = true`).
pub fn maybe_print_options(params: &Params) {
    if params.bool_or("Print options", false).unwrap_or(false) {
        println!("--- options ---");
        for (k, v) in params.keys() {
            println!("{k} = {v}");
        }
        println!("---------------");
    }
}

/// Prints a per-phase timing breakdown (the artifact's `Print timings`).
pub fn maybe_print_timings(params: &Params, timings: &Timings) {
    if params.bool_or("Print timings", false).unwrap_or(false) {
        println!("--- timings (rank 0) ---");
        for &p in &ALL_PHASES {
            let s = timings.secs(p);
            if s > 0.0 || timings.flops(p) > 0 {
                println!(
                    "{:>12}: {:.6} s  ({} flops)",
                    p.label(),
                    s,
                    timings.flops(p)
                );
            }
        }
        println!("{:>12}: {:.6} s", "total", timings.total_secs());
        println!("------------------------");
    }
}

/// Loads the input tensor (`Input file`) or generates the synthetic one.
pub fn input_tensor<T: IoScalar>(
    params: &Params,
) -> Result<DenseTensor<T>, Box<dyn std::error::Error>> {
    let dims = params.usize_list("Global dims")?;
    if let Some(path) = params.get("Input file") {
        let x = if path.ends_with(".rtt") {
            ratucker_tensor::io::read_rtt(path)?
        } else {
            ratucker_tensor::io::read_raw(path, Shape::new(&dims))?
        };
        if x.shape().dims() != dims {
            return Err(format!(
                "input tensor has shape {:?}, parameter file says {:?}",
                x.shape().dims(),
                dims
            )
            .into());
        }
        return Ok(x);
    }
    let construction = params
        .usize_list_opt("Construction Ranks")?
        .or(params.usize_list_opt("Ranks")?)
        .ok_or_else(|| ParamError::Missing("Construction Ranks (or Ranks)".into()))?;
    let noise = params.f64_or("Noise", 1e-4)?;
    let seed = params.usize_or("Seed", 0)? as u64;
    Ok(SyntheticSpec::new(&dims, &construction, noise, seed).build())
}

/// Parses the checkpoint keys (`Checkpoint dir` / `Checkpoint every` /
/// `Resume`) into a policy, if checkpointing is requested.
pub fn checkpoint_policy(params: &Params) -> Result<Option<CheckpointPolicy>, ParamError> {
    let Some(dir) = params.get("Checkpoint dir") else {
        return Ok(None);
    };
    let mut policy = CheckpointPolicy::new(dir).every(params.usize_or("Checkpoint every", 1)?);
    if params.bool_or("Resume", false)? {
        policy = policy.resuming();
    }
    Ok(Some(policy))
}

/// Parses the resilience keys (`Buddy replication` / `ABFT` /
/// `Straggler demotion`) into a [`ResilienceConfig`], if any is present.
/// The checkpoint policy, if any, rides along as the RTCK disk fallback.
pub fn resilience_config(
    params: &Params,
    checkpoint: Option<CheckpointPolicy>,
) -> Result<Option<ResilienceConfig>, ParamError> {
    let buddy = params.get("Buddy replication");
    let abft = params.get("ABFT");
    let straggler = params.get("Straggler demotion");
    if buddy.is_none() && abft.is_none() && straggler.is_none() {
        return Ok(None);
    }
    let mut cfg = ResilienceConfig::default()
        .with_buddy_degree(params.usize_or("Buddy replication", 1)?)
        .with_abft(match abft {
            None => AbftMode::Off,
            Some(s) => AbftMode::parse(s).ok_or_else(|| ParamError::Invalid {
                key: "ABFT".into(),
                value: s.into(),
                expected: "off, detect, or recover",
            })?,
        });
    if straggler.is_some() {
        let multiple = params.f64_or("Straggler demotion", 4.0)?;
        if multiple.is_nan() || multiple <= 1.0 {
            return Err(ParamError::Invalid {
                key: "Straggler demotion".into(),
                value: multiple.to_string(),
                expected: "median multiple greater than 1",
            });
        }
        cfg = cfg.with_straggler(StragglerPolicy::new(multiple));
    }
    if let Some(policy) = checkpoint {
        cfg = cfg.with_checkpoint(policy);
    }
    Ok(Some(cfg))
}

/// The shared K/M/G byte-size parser (re-exported from `ratucker-mem`
/// so every byte-count flag in the workspace — `Mem budget` here, the
/// serve daemon's `--mem-budget` / `--ingest-limit` — parses
/// identically: `None` on malformed input or zero, saturation to
/// `u64::MAX` on overflow).
pub use ratucker_mem::parse_size;

/// Parses the `Mem budget` key (per-rank budget in bytes, `K`/`M`/`G`
/// suffixes accepted).
pub fn mem_budget(params: &Params) -> Result<Option<u64>, ParamError> {
    match params.get("Mem budget") {
        None => Ok(None),
        Some(s) => parse_size(s).map(Some).ok_or_else(|| ParamError::Invalid {
            key: "Mem budget".into(),
            value: s.into(),
            expected: "a positive byte count with an optional K/M/G suffix",
        }),
    }
}

/// Parses the `Threads` key (intra-rank kernel worker threads; values
/// above `ratucker_tensor::par::MAX_THREADS` saturate there). Unlike the
/// `RATUCKER_THREADS` env override — which warns and runs serial on
/// garbage, matching the `MPISIM_RECV_TIMEOUT_SECS` precedent — a
/// malformed *config file* value is a hard error.
pub fn threads(params: &Params) -> Result<Option<usize>, ParamError> {
    match params.get("Threads") {
        None => Ok(None),
        Some(s) => match s.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n.min(ratucker_tensor::par::MAX_THREADS))),
            _ => Err(ParamError::Invalid {
                key: "Threads".into(),
                value: s.into(),
                expected: "a positive worker count",
            }),
        },
    }
}

/// Installs the configured worker-pool size before any rank thread
/// spawns (rank threads inherit the process-global setting). `None`
/// leaves the `RATUCKER_THREADS` env resolution in charge.
fn install_threads(n: Option<usize>) {
    if let Some(n) = n {
        ratucker_tensor::par::set_num_threads(n);
    }
}

/// Parses the `Deadline profile` key into a per-collective deadline
/// policy (`off`, `strict`, or `lenient`).
pub fn deadline_policy(params: &Params) -> Result<Option<DeadlinePolicy>, ParamError> {
    match params.get("Deadline profile") {
        None => Ok(None),
        Some(s) => DeadlinePolicy::profile(s).ok_or_else(|| ParamError::Invalid {
            key: "Deadline profile".into(),
            value: s.into(),
            expected: "off, strict, or lenient",
        }),
    }
}

/// Parses the `Retry` key (max retransmissions per point-to-point
/// operation; `0` disables retries).
pub fn retry_policy(params: &Params) -> Result<Option<RetryPolicy>, ParamError> {
    let n = params.usize_or("Retry", 0)?;
    Ok((n > 0).then(|| RetryPolicy::new(n.min(u32::MAX as usize) as u32)))
}

/// Parses the `Overlap` key (`on` / `off`): whether the distributed
/// TTM/SI kernels pipeline their collectives behind the next slab's
/// local compute. The pipelined and blocking paths are bit-identical
/// (DESIGN.md §17), so this is a pure wall-clock knob; default `on`.
pub fn overlap_mode(params: &Params) -> Result<OverlapMode, ParamError> {
    match params.get("Overlap") {
        None => Ok(OverlapMode::On),
        Some(s) => OverlapMode::parse(s).ok_or_else(|| ParamError::Invalid {
            key: "Overlap".into(),
            value: s.into(),
            expected: "on or off",
        }),
    }
}

/// The grid dims (default: all ones over the tensor order).
pub fn grid_dims(params: &Params) -> Result<Vec<usize>, ParamError> {
    let dims = params.usize_list("Global dims")?;
    Ok(params
        .usize_list_opt("Processor grid dims")?
        .unwrap_or_else(|| vec![1; dims.len()]))
}

/// Writes a Tucker decomposition as `.rtt` files under a prefix.
pub fn write_tucker<T: IoScalar>(prefix: &str, tucker: &TuckerTensor<T>) -> std::io::Result<()> {
    ratucker_tensor::io::write_rtt(format!("{prefix}_core.rtt"), &tucker.core)?;
    for (k, u) in tucker.factors.iter().enumerate() {
        let t = DenseTensor::from_vec(Shape::new(&[u.rows(), u.cols()]), u.as_slice().to_vec());
        ratucker_tensor::io::write_rtt(format!("{prefix}_factor_{k}.rtt"), &t)?;
    }
    Ok(())
}

/// Outcome of a driver run, for printing and for the integration tests.
#[derive(Clone, Debug)]
pub struct DriverOutcome {
    /// Final relative error.
    pub rel_error: f64,
    /// Final Tucker ranks.
    pub ranks: Vec<usize>,
    /// Compression ratio.
    pub compression: f64,
    /// Rank-0 phase breakdown.
    pub timings: Timings,
    /// Per-sweep errors (HOOI) or the single STHOSVD error.
    pub sweep_errors: Vec<f64>,
}

/// Runs STHOSVD as configured by a parameter file. Returns the rank-0
/// outcome.
pub fn run_sthosvd_driver<T: IoScalar>(
    params: &Params,
) -> Result<DriverOutcome, Box<dyn std::error::Error>> {
    if !params.bool_or("Perform STHOSVD", true)? {
        return Err("parameter file sets `Perform STHOSVD = false`".into());
    }
    let x = input_tensor::<T>(params)?;
    let grid = grid_dims(params)?;
    let eps = params.f64_or("SV Threshold", 0.0)?;
    let trunc = if eps > 0.0 {
        SthosvdTruncation::RelError(eps)
    } else {
        SthosvdTruncation::Ranks(
            params
                .usize_list_opt("Ranks")?
                .ok_or_else(|| ParamError::Missing("Ranks".into()))?,
        )
    };
    let p: usize = grid.iter().product();
    install_threads(threads(params)?);
    let outcome = run_collective(
        p,
        &grid,
        &x,
        params.get("Trace out"),
        deadline_policy(params)?,
        retry_policy(params)?,
        None,
        overlap_mode(params)?,
        move |g, xd| dist_sthosvd(g, xd, &trunc),
    );
    if let Some(prefix) = params.get("Output prefix") {
        // Re-run gather on a fresh universe is unnecessary: outcome holds
        // the gathered tucker already.
        write_tucker(prefix, &outcome.1)?;
    }
    Ok(outcome.0)
}

/// Runs HOOI (fixed-rank or rank-adaptive) as configured by a parameter
/// file. Returns the rank-0 outcome.
pub fn run_hooi_driver<T: IoScalar>(
    params: &Params,
) -> Result<DriverOutcome, Box<dyn std::error::Error>> {
    let x = input_tensor::<T>(params)?;
    let grid = grid_dims(params)?;
    let ranks = params
        .usize_list_opt("Decomposition Ranks")?
        .or(params.usize_list_opt("Ranks")?)
        .ok_or_else(|| ParamError::Missing("Decomposition Ranks (or Ranks)".into()))?;

    let mut cfg = match (
        params.bool_or("Dimension Tree Memoization", false)?,
        params.usize_or("SVD Method", 0)?,
    ) {
        (false, 0) => HooiConfig::hooi(),
        (true, 0) => HooiConfig::hooi_dt(),
        (false, 2) => HooiConfig::hosi(),
        (true, 2) => HooiConfig::hosi_dt(),
        (_, other) => {
            return Err(format!("SVD Method = {other} is not supported (use 0 or 2)").into())
        }
    };
    cfg = cfg
        .with_max_iters(params.usize_or("HOOI max iters", 2)?)
        .with_seed(params.usize_or("Seed", 0)? as u64)
        .with_si_steps(params.usize_or("Subspace Iteration Steps", 1)?);
    // Accepted for compatibility with the artifact's parameter files.
    let _ = params.bool_or("HOOI Adapt core tensor gather type", false)?;

    let adapt_eps = params.f64_or("HOOI-Adapt Threshold", 0.0)?;
    let ckpt = checkpoint_policy(params)?;
    if ckpt.is_some() && adapt_eps <= 0.0 {
        return Err(
            "`Checkpoint dir` requires a rank-adaptive run (`HOOI-Adapt Threshold` > 0)".into(),
        );
    }
    let resilience = resilience_config(params, ckpt.clone())?;
    if resilience.is_some() && adapt_eps <= 0.0 {
        return Err("`Buddy replication` / `ABFT` require a rank-adaptive run \
                    (`HOOI-Adapt Threshold` > 0)"
            .into());
    }
    let p: usize = grid.iter().product();
    install_threads(threads(params)?);
    let deadline = deadline_policy(params)?;
    let retry = retry_policy(params)?;
    let overlap = overlap_mode(params)?;
    // Memory-budget admission (perfmodel peak projection): the run is
    // either admitted at the cheapest degradation rung whose projected
    // per-rank peak fits, or refused here — before any rank thread
    // starts or a byte is staged.
    let mem = match mem_budget(params)? {
        None => None,
        Some(budget) => {
            // Worst-case ranks: α-growth every sweep, capped at dims.
            let growth = if adapt_eps > 0.0 {
                params
                    .f64_or("Rank Growth Factor", 1.5)?
                    .powi(cfg.max_iters.saturating_sub(1) as i32)
            } else {
                1.0
            };
            let peak_ranks: Vec<usize> = ranks
                .iter()
                .zip(x.shape().dims())
                .map(|(&r, &n)| (((r as f64) * growth).ceil() as usize).min(n))
                .collect();
            let mp = MemProblem {
                dims: x.shape().dims().to_vec(),
                grid: grid.clone(),
                ranks: peak_ranks,
                buddy_degree: resilience.as_ref().map_or(0, |r| r.buddy_degree),
                abft: resilience.as_ref().is_some_and(|r| r.abft != AbftMode::Off),
                elem_bytes: std::mem::size_of::<T>(),
            };
            match admit(&mp, budget) {
                Admission::Admit {
                    start_rung,
                    headroom,
                } => {
                    if start_rung > 0 {
                        println!(
                            "mem budget: admitted at degradation rung {start_rung} \
                             ({headroom} B headroom)"
                        );
                    }
                    Some((budget, start_rung))
                }
                Admission::Reject { required, budget } => {
                    return Err(format!(
                        "memory budget of {budget} B per rank refused: the cheapest \
                         degraded execution mode still needs about {required} B; \
                         raise --mem-budget or use more ranks"
                    )
                    .into())
                }
            }
        }
    };
    let outcome = if adapt_eps > 0.0 {
        let ra = RaConfig {
            eps: adapt_eps,
            alpha: params.f64_or("Rank Growth Factor", 1.5)?,
            initial_ranks: ranks,
            max_iters: cfg.max_iters,
            stop_on_threshold: params.bool_or("Stop On Threshold", false)?,
            inner: cfg,
        };
        ra.validate(x.shape().dims())
            .map_err(|msg| format!("infeasible rank-adaptive configuration: {msg}"))?;
        run_collective(
            p,
            &grid,
            &x,
            params.get("Trace out"),
            deadline,
            retry,
            mem,
            overlap,
            move |g, xd| match (&resilience, &ckpt) {
                (Some(res), _) => {
                    let out =
                        dist_ra_hooi_resilient(g, xd, &ra, res).unwrap_or_else(|e| panic!("{e}"));
                    match out {
                        ResilientOutcome::Completed { result, .. } => *result,
                        other => panic!(
                            "driver run without fault injection did not complete: the \
                             resilient solver returned {other:?} (phase timings: {})",
                            other.timings().summary()
                        ),
                    }
                }
                (None, Some(policy)) => dist_ra_hooi_checkpointed(g, xd, &ra, policy),
                (None, None) => dist_ra_hooi(g, xd, &ra),
            },
        )
    } else {
        run_collective(
            p,
            &grid,
            &x,
            params.get("Trace out"),
            deadline,
            retry,
            mem,
            overlap,
            move |g, xd| dist_hooi(g, xd, &ranks, &cfg),
        )
    };
    if let Some(prefix) = params.get("Output prefix") {
        write_tucker(prefix, &outcome.1)?;
    }
    Ok(outcome.0)
}

/// Launches a universe over the given grid, scatters the tensor, runs the
/// collective algorithm, and collects rank-0's outcome plus the gathered
/// decomposition.
///
/// When `trace_out` is set, a span-tracing session brackets the launch
/// (with a per-rank root `"run"` span so self-attributed traffic
/// partitions the universe totals), and the merged Chrome trace JSON is
/// written to that path together with a per-phase breakdown on stdout.
///
/// The gray-failure knobs (`deadline` / `retry`) are installed on the
/// universe's fabric before any rank starts, the memory budget and its
/// admitted degradation rung (`mem`) on every rank's ledger, and the
/// `overlap` mode on every rank thread (it is thread-local).
#[allow(clippy::too_many_arguments)]
fn run_collective<T: IoScalar>(
    p: usize,
    grid_dims: &[usize],
    x: &DenseTensor<T>,
    trace_out: Option<&str>,
    deadline: Option<DeadlinePolicy>,
    retry: Option<RetryPolicy>,
    mem: Option<(u64, u8)>,
    overlap: OverlapMode,
    run: impl Fn(&CartGrid, &DistTensor<T>) -> DistRunResult<T> + Sync,
) -> (DriverOutcome, TuckerTensor<T>) {
    let session = trace_out.map(|_| ratucker_obs::TraceSession::start());
    let universe = Universe::new(p);
    universe
        .set_deadline_policy(deadline)
        .set_retry_policy(retry);
    if let Some((budget, start_rung)) = mem {
        universe
            .set_mem_budget(Some(budget))
            .set_start_rung(start_rung);
    }
    let results = universe.run(|c| {
        ratucker_dist::set_overlap(overlap);
        let grid = CartGrid::new(c, grid_dims);
        // Root span per rank: created *after* grid construction (which
        // consumes the Comm by value) so it borrows `grid.comm`.
        let _root = ratucker_obs::span(&grid.comm, "run");
        let xd = DistTensor::scatter_from_replicated(&grid, x);
        let res = run(&grid, &xd);
        let tucker = res.tucker.gather(&grid);
        (res, tucker)
    });
    if let (Some(session), Some(path)) = (session, trace_out) {
        let trace = session.finish();
        match ratucker_obs::write_trace(std::path::Path::new(path), &trace) {
            Ok(()) => {
                println!(
                    "trace: {} spans over {} ranks -> {path}",
                    trace.events.len(),
                    trace.ranks()
                );
                println!("{}", ratucker_obs::PhaseBreakdown::from_trace(&trace));
            }
            Err(e) => eprintln!("trace: failed to write {path}: {e}"),
        }
    }
    let (res, tucker) = results.into_iter().next().expect("at least one rank");
    (
        DriverOutcome {
            rel_error: res.rel_error,
            ranks: res.tucker.ranks(),
            compression: tucker.compression_ratio(),
            timings: res.timings,
            sweep_errors: res.sweep_errors,
        },
        tucker,
    )
}

/// Parses `--parameter-file <path>` from argv (the artifact's interface),
/// then layers the checkpoint flags (`--checkpoint-dir <dir>`, `--resume`)
/// over the file as the `Checkpoint dir` / `Resume` keys.
pub fn parameter_file_from_args() -> Result<Params, Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    params_from_argv(&args)
}

/// Testable core of [`parameter_file_from_args`].
pub fn params_from_argv(args: &[String]) -> Result<Params, Box<dyn std::error::Error>> {
    let pos = args.iter().position(|a| a == "--parameter-file").ok_or(
        "usage: <driver> --parameter-file <file.cfg> [--checkpoint-dir <dir>] [--resume] \
             [--buddy-replication <k>] [--abft off|detect|recover] [--trace-out <trace.json>] \
             [--deadline-profile off|strict|lenient] [--retry <n>] [--straggler-demotion <x>] \
             [--mem-budget <size>] [--threads <n>] [--overlap on|off]",
    )?;
    let path = args
        .get(pos + 1)
        .ok_or("--parameter-file requires a path argument")?;
    let mut params = Params::load(path)?;
    if let Some(pos) = args.iter().position(|a| a == "--checkpoint-dir") {
        let dir = args
            .get(pos + 1)
            .ok_or("--checkpoint-dir requires a path argument")?;
        params.set("Checkpoint dir", dir);
    }
    if args.iter().any(|a| a == "--resume") {
        params.set("Resume", "true");
    }
    if let Some(pos) = args.iter().position(|a| a == "--buddy-replication") {
        let k = args
            .get(pos + 1)
            .ok_or("--buddy-replication requires a degree argument")?;
        params.set("Buddy replication", k);
    }
    if let Some(pos) = args.iter().position(|a| a == "--abft") {
        let mode = args
            .get(pos + 1)
            .ok_or("--abft requires a mode argument (off, detect, recover)")?;
        params.set("ABFT", mode);
    }
    if let Some(pos) = args.iter().position(|a| a == "--trace-out") {
        let path = args
            .get(pos + 1)
            .ok_or("--trace-out requires a path argument")?;
        params.set("Trace out", path);
    }
    if let Some(pos) = args.iter().position(|a| a == "--deadline-profile") {
        let name = args
            .get(pos + 1)
            .ok_or("--deadline-profile requires a profile argument (off, strict, lenient)")?;
        params.set("Deadline profile", name);
    }
    if let Some(pos) = args.iter().position(|a| a == "--retry") {
        let n = args
            .get(pos + 1)
            .ok_or("--retry requires a max-retransmissions argument")?;
        params.set("Retry", n);
    }
    if let Some(pos) = args.iter().position(|a| a == "--straggler-demotion") {
        let x = args
            .get(pos + 1)
            .ok_or("--straggler-demotion requires a median-multiple argument")?;
        params.set("Straggler demotion", x);
    }
    if let Some(pos) = args.iter().position(|a| a == "--mem-budget") {
        let size = args
            .get(pos + 1)
            .ok_or("--mem-budget requires a size argument (bytes, K/M/G suffixes accepted)")?;
        params.set("Mem budget", size);
    }
    if let Some(pos) = args.iter().position(|a| a == "--threads") {
        let n = args
            .get(pos + 1)
            .ok_or("--threads requires a worker-count argument")?;
        params.set("Threads", n);
    }
    if let Some(pos) = args.iter().position(|a| a == "--overlap") {
        let mode = args
            .get(pos + 1)
            .ok_or("--overlap requires a mode argument (on, off)")?;
        params.set("Overlap", mode);
    }
    Ok(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sthosvd_cfg(extra: &str) -> Params {
        Params::parse(&format!(
            "Global dims = 12 10 8\nRanks = 3 3 2\nNoise = 0.01\nProcessor grid dims = 1 2 2\n{extra}"
        ))
        .unwrap()
    }

    #[test]
    fn sthosvd_driver_rank_specified() {
        let p = sthosvd_cfg("");
        let out = run_sthosvd_driver::<f32>(&p).unwrap();
        assert_eq!(out.ranks, vec![3, 3, 2]);
        assert!(out.rel_error < 0.05, "err {}", out.rel_error);
        assert!(out.compression > 1.0);
    }

    #[test]
    fn sthosvd_driver_error_specified() {
        let p = sthosvd_cfg("SV Threshold = 0.1\n");
        let out = run_sthosvd_driver::<f32>(&p).unwrap();
        assert!(out.rel_error <= 0.1);
    }

    #[test]
    fn sthosvd_driver_respects_perform_flag() {
        let p = sthosvd_cfg("Perform STHOSVD = false\n");
        assert!(run_sthosvd_driver::<f32>(&p).is_err());
    }

    #[test]
    fn hooi_driver_all_variant_selectors() {
        for (dt, svd) in [(false, 0usize), (true, 0), (false, 2), (true, 2)] {
            let p = Params::parse(&format!(
                "Global dims = 10 9 8\nConstruction Ranks = 3 2 2\nDecomposition Ranks = 3 2 2\n\
                 Noise = 0.01\nProcessor grid dims = 2 1 1\n\
                 Dimension Tree Memoization = {dt}\nSVD Method = {svd}\nHOOI max iters = 2\n"
            ))
            .unwrap();
            let out = run_hooi_driver::<f64>(&p).unwrap();
            assert!(out.rel_error < 0.05, "dt={dt} svd={svd}: {}", out.rel_error);
            assert_eq!(out.sweep_errors.len(), 2);
        }
    }

    #[test]
    fn hooi_driver_rank_adaptive() {
        let p = Params::parse(
            "Global dims = 12 10 8\nConstruction Ranks = 3 3 2\nDecomposition Ranks = 4 4 3\n\
             Noise = 0.01\nProcessor grid dims = 1 1 2\nDimension Tree Memoization = true\n\
             SVD Method = 2\nHOOI-Adapt Threshold = 0.1\nHOOI max iters = 3\n",
        )
        .unwrap();
        let out = run_hooi_driver::<f32>(&p).unwrap();
        assert!(out.rel_error <= 0.1);
        // Adaptive truncation should land at or below the start ranks.
        assert!(out.ranks.iter().zip(&[4usize, 4, 3]).all(|(a, b)| a <= b));
    }

    #[test]
    fn hooi_driver_rejects_infeasible_ra_config_cleanly() {
        // α = 1 can never grow ranks; the driver must return a typed
        // error instead of launching ranks that panic mid-sweep.
        let p = Params::parse(
            "Global dims = 12 10 8\nConstruction Ranks = 3 3 2\nDecomposition Ranks = 4 4 3\n\
             Noise = 0.01\nProcessor grid dims = 1 1 2\n\
             HOOI-Adapt Threshold = 0.1\nRank Growth Factor = 1.0\n",
        )
        .unwrap();
        let err = run_hooi_driver::<f32>(&p).unwrap_err();
        assert!(
            err.to_string()
                .contains("infeasible rank-adaptive configuration"),
            "{err}"
        );
    }

    #[test]
    fn hooi_driver_rejects_unknown_svd_method() {
        let p = Params::parse("Global dims = 8 8\nRanks = 2 2\nSVD Method = 7\n").unwrap();
        assert!(run_hooi_driver::<f32>(&p).is_err());
    }

    #[test]
    fn driver_roundtrips_through_files() {
        let dir = std::env::temp_dir();
        let input = dir.join(format!("ratucker_cli_in_{}.rtt", std::process::id()));
        let prefix = dir
            .join(format!("ratucker_cli_out_{}", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let x = SyntheticSpec::new(&[10, 8, 6], &[2, 2, 2], 0.01, 9).build::<f32>();
        ratucker_tensor::io::write_rtt(&input, &x).unwrap();

        let p = Params::parse(&format!(
            "Global dims = 10 8 6\nRanks = 2 2 2\nInput file = {}\nOutput prefix = {prefix}\n",
            input.display()
        ))
        .unwrap();
        let out = run_sthosvd_driver::<f32>(&p).unwrap();
        assert!(out.rel_error < 0.05);

        // The written core must load back with the reported ranks.
        let core: DenseTensor<f32> =
            ratucker_tensor::io::read_rtt(format!("{prefix}_core.rtt")).unwrap();
        assert_eq!(core.shape().dims(), &out.ranks[..]);
        std::fs::remove_file(&input).unwrap();
        for k in 0..3 {
            std::fs::remove_file(format!("{prefix}_factor_{k}.rtt")).unwrap();
        }
        std::fs::remove_file(format!("{prefix}_core.rtt")).unwrap();
    }

    #[test]
    fn checkpoint_keys_build_a_policy() {
        let p = Params::parse("Checkpoint dir = /tmp/ck\nCheckpoint every = 2\nResume = true\n")
            .unwrap();
        let pol = checkpoint_policy(&p).unwrap().unwrap();
        assert_eq!(pol.dir, std::path::PathBuf::from("/tmp/ck"));
        assert_eq!(pol.every, 2);
        assert!(pol.resume);
        assert!(checkpoint_policy(&Params::parse("").unwrap())
            .unwrap()
            .is_none());
    }

    #[test]
    fn checkpointing_requires_rank_adaptive_run() {
        let p = Params::parse(
            "Global dims = 8 8\nRanks = 2 2\nNoise = 0.01\nCheckpoint dir = /tmp/ck\n",
        )
        .unwrap();
        let err = run_hooi_driver::<f32>(&p).unwrap_err().to_string();
        assert!(err.contains("rank-adaptive"), "{err}");
    }

    #[test]
    fn argv_flags_layer_over_the_parameter_file() {
        let dir = std::env::temp_dir();
        let cfg = dir.join(format!("ratucker_cli_argv_{}.cfg", std::process::id()));
        std::fs::write(&cfg, "Global dims = 8 8\nRanks = 2 2\n").unwrap();
        let args: Vec<String> = [
            "driver",
            "--parameter-file",
            cfg.to_str().unwrap(),
            "--checkpoint-dir",
            "/tmp/ckdir",
            "--resume",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let p = params_from_argv(&args).unwrap();
        assert_eq!(p.get("Checkpoint dir"), Some("/tmp/ckdir"));
        assert!(p.bool_or("Resume", false).unwrap());
        assert_eq!(p.usize_list("Global dims").unwrap(), vec![8, 8]);
        std::fs::remove_file(&cfg).unwrap();
    }

    #[test]
    fn hooi_driver_rank_adaptive_with_checkpoints() {
        let mut ckdir = std::env::temp_dir();
        ckdir.push(format!("ratucker_cli_ck_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&ckdir);
        let p = Params::parse(&format!(
            "Global dims = 12 10 8\nConstruction Ranks = 3 3 2\nDecomposition Ranks = 2 2 2\n\
             Noise = 0.01\nProcessor grid dims = 1 1 2\nDimension Tree Memoization = true\n\
             SVD Method = 2\nHOOI-Adapt Threshold = 0.05\nHOOI max iters = 3\n\
             Rank Growth Factor = 2.0\nPrecision = double\nCheckpoint dir = {}\n",
            ckdir.display()
        ))
        .unwrap();
        let out = run_hooi_driver::<f64>(&p).unwrap();
        assert!(out.rel_error <= 0.05);
        let saved = std::fs::read_dir(&ckdir).unwrap().count();
        assert!(saved >= 1, "no checkpoints written");
        // Resuming from the final checkpoint reproduces the outcome.
        let mut p2 = p.clone();
        p2.set("Resume", "true");
        let out2 = run_hooi_driver::<f64>(&p2).unwrap();
        assert_eq!(out2.rel_error, out.rel_error);
        assert_eq!(out2.ranks, out.ranks);
        std::fs::remove_dir_all(&ckdir).unwrap();
    }

    #[test]
    fn resilience_keys_build_a_config() {
        let p = Params::parse("Buddy replication = 2\nABFT = recover\n").unwrap();
        let cfg = resilience_config(&p, None).unwrap().unwrap();
        assert_eq!(cfg.buddy_degree, 2);
        assert_eq!(cfg.abft, AbftMode::Recover);
        assert!(cfg.checkpoint.is_none());

        // Either key alone is enough; the other takes its default.
        let p = Params::parse("ABFT = detect\n").unwrap();
        let cfg = resilience_config(&p, Some(CheckpointPolicy::new("/tmp/ck")))
            .unwrap()
            .unwrap();
        assert_eq!(cfg.buddy_degree, 1);
        assert_eq!(cfg.abft, AbftMode::Detect);
        assert!(cfg.checkpoint.is_some());

        assert!(resilience_config(&Params::parse("").unwrap(), None)
            .unwrap()
            .is_none());
        let bad = Params::parse("ABFT = sometimes\n").unwrap();
        assert!(resilience_config(&bad, None).is_err());
    }

    #[test]
    fn resilience_flags_layer_over_the_parameter_file() {
        let dir = std::env::temp_dir();
        let cfg = dir.join(format!("ratucker_cli_res_argv_{}.cfg", std::process::id()));
        std::fs::write(&cfg, "Global dims = 8 8\nRanks = 2 2\n").unwrap();
        let args: Vec<String> = [
            "driver",
            "--parameter-file",
            cfg.to_str().unwrap(),
            "--buddy-replication",
            "2",
            "--abft",
            "detect",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let p = params_from_argv(&args).unwrap();
        assert_eq!(p.get("Buddy replication"), Some("2"));
        assert_eq!(p.get("ABFT"), Some("detect"));
        std::fs::remove_file(&cfg).unwrap();
    }

    #[test]
    fn resilience_requires_rank_adaptive_run() {
        let p =
            Params::parse("Global dims = 8 8\nRanks = 2 2\nNoise = 0.01\nBuddy replication = 1\n")
                .unwrap();
        let err = run_hooi_driver::<f32>(&p).unwrap_err().to_string();
        assert!(err.contains("rank-adaptive"), "{err}");
    }

    #[test]
    fn hooi_driver_rank_adaptive_resilient_matches_plain() {
        let base = "Global dims = 12 10 8\nConstruction Ranks = 3 3 2\n\
                    Decomposition Ranks = 2 2 2\nNoise = 0.01\nProcessor grid dims = 1 2 2\n\
                    Dimension Tree Memoization = true\nSVD Method = 2\n\
                    HOOI-Adapt Threshold = 0.05\nHOOI max iters = 3\n\
                    Rank Growth Factor = 2.0\nPrecision = double\n";
        let plain = run_hooi_driver::<f64>(&Params::parse(base).unwrap()).unwrap();
        let p = Params::parse(&format!("{base}Buddy replication = 1\nABFT = recover\n")).unwrap();
        let resilient = run_hooi_driver::<f64>(&p).unwrap();
        // No faults are injected: the resilient path is bit-identical.
        assert_eq!(resilient.rel_error, plain.rel_error);
        assert_eq!(resilient.ranks, plain.ranks);
    }

    #[test]
    fn overlap_key_parses_and_flag_layers() {
        // Absent key defaults on; explicit values parse; junk is typed.
        assert_eq!(
            overlap_mode(&Params::parse("").unwrap()).unwrap(),
            OverlapMode::On
        );
        assert_eq!(
            overlap_mode(&Params::parse("Overlap = off\n").unwrap()).unwrap(),
            OverlapMode::Off
        );
        assert!(overlap_mode(&Params::parse("Overlap = maybe\n").unwrap()).is_err());

        let dir = std::env::temp_dir();
        let cfg = dir.join(format!(
            "ratucker_cli_overlap_argv_{}.cfg",
            std::process::id()
        ));
        std::fs::write(&cfg, "Global dims = 8 8\nRanks = 2 2\n").unwrap();
        let args: Vec<String> = [
            "driver",
            "--parameter-file",
            cfg.to_str().unwrap(),
            "--overlap",
            "off",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let p = params_from_argv(&args).unwrap();
        assert_eq!(p.get("Overlap"), Some("off"));
        std::fs::remove_file(&cfg).unwrap();
    }

    #[test]
    fn overlap_off_driver_is_bit_identical_to_default() {
        let on = run_sthosvd_driver::<f32>(&sthosvd_cfg("")).unwrap();
        let off = run_sthosvd_driver::<f32>(&sthosvd_cfg("Overlap = off\n")).unwrap();
        // The knob is pure wall-clock: same error bits, same ranks.
        assert_eq!(on.rel_error.to_bits(), off.rel_error.to_bits());
        assert_eq!(on.ranks, off.ranks);
        assert_eq!(on.sweep_errors.len(), off.sweep_errors.len());
    }

    #[test]
    fn gray_failure_keys_build_policies() {
        let p = Params::parse("Deadline profile = strict\nRetry = 3\n").unwrap();
        let d = deadline_policy(&p).unwrap().unwrap();
        assert_eq!(d, DeadlinePolicy::strict());
        let r = retry_policy(&p).unwrap().unwrap();
        assert_eq!(r.max_retries, 3);

        // "off" and 0 disable the knobs without erroring.
        let p = Params::parse("Deadline profile = off\nRetry = 0\n").unwrap();
        assert!(deadline_policy(&p).unwrap().is_none());
        assert!(retry_policy(&p).unwrap().is_none());
        // Absent keys default to disabled.
        let p = Params::parse("").unwrap();
        assert!(deadline_policy(&p).unwrap().is_none());
        assert!(retry_policy(&p).unwrap().is_none());
        // Unknown profiles are typed errors.
        let p = Params::parse("Deadline profile = aggressive\n").unwrap();
        assert!(deadline_policy(&p).is_err());
    }

    #[test]
    fn straggler_key_joins_the_resilience_config() {
        let p = Params::parse("Straggler demotion = 3\n").unwrap();
        let cfg = resilience_config(&p, None).unwrap().unwrap();
        let pol = cfg.straggler.unwrap();
        assert_eq!(pol.multiple, 3.0);
        // The key alone is enough to opt into the resilient driver; the
        // other knobs take their defaults.
        assert_eq!(cfg.buddy_degree, 1);
        assert_eq!(cfg.abft, AbftMode::Off);
        // A multiple that can never exceed the median is rejected.
        let bad = Params::parse("Straggler demotion = 1.0\n").unwrap();
        assert!(resilience_config(&bad, None).is_err());
        // Without the key, no straggler policy is attached.
        let p = Params::parse("ABFT = detect\n").unwrap();
        assert!(resilience_config(&p, None)
            .unwrap()
            .unwrap()
            .straggler
            .is_none());
    }

    #[test]
    fn gray_failure_flags_layer_over_the_parameter_file() {
        let dir = std::env::temp_dir();
        let cfg = dir.join(format!("ratucker_cli_gray_argv_{}.cfg", std::process::id()));
        std::fs::write(&cfg, "Global dims = 8 8\nRanks = 2 2\n").unwrap();
        let args: Vec<String> = [
            "driver",
            "--parameter-file",
            cfg.to_str().unwrap(),
            "--deadline-profile",
            "lenient",
            "--retry",
            "4",
            "--straggler-demotion",
            "2.5",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let p = params_from_argv(&args).unwrap();
        assert_eq!(p.get("Deadline profile"), Some("lenient"));
        assert_eq!(p.get("Retry"), Some("4"));
        assert_eq!(p.get("Straggler demotion"), Some("2.5"));
        std::fs::remove_file(&cfg).unwrap();
    }

    #[test]
    fn hooi_driver_runs_with_gray_failure_knobs() {
        // Installing deadlines and retries on a healthy run must not
        // change the result: nothing times out, nothing retries.
        let base = "Global dims = 12 10 8\nConstruction Ranks = 3 3 2\n\
                    Decomposition Ranks = 2 2 2\nNoise = 0.01\nProcessor grid dims = 1 2 2\n\
                    HOOI-Adapt Threshold = 0.05\nHOOI max iters = 3\n\
                    Rank Growth Factor = 2.0\nPrecision = double\n";
        let plain = run_hooi_driver::<f64>(&Params::parse(base).unwrap()).unwrap();
        let p = Params::parse(&format!(
            "{base}Deadline profile = lenient\nRetry = 2\nStraggler demotion = 100\n"
        ))
        .unwrap();
        let guarded = run_hooi_driver::<f64>(&p).unwrap();
        assert_eq!(guarded.rel_error, plain.rel_error);
        assert_eq!(guarded.ranks, plain.ranks);
    }

    #[test]
    fn trace_out_key_writes_a_valid_chrome_trace() {
        let dir = std::env::temp_dir();
        let trace_path = dir
            .join(format!("ratucker_cli_trace_{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let p = sthosvd_cfg(&format!("Trace out = {trace_path}\n"));
        let out = run_sthosvd_driver::<f32>(&p).unwrap();
        assert!(out.rel_error < 0.05);

        // The emitted file must round-trip through the obs parser and
        // pass validation: 4 ranks, ≥1 span each, per-phase self bytes
        // summing to the footer's universe totals.
        let text = std::fs::read_to_string(&trace_path).unwrap();
        let parsed = ratucker_obs::parse(&text).unwrap();
        ratucker_obs::validate_parsed(&parsed).unwrap();
        assert_eq!(parsed.ranks, 4);
        assert!(parsed
            .spans
            .iter()
            .any(|s| s.phase == "run" && s.depth == 0));
        assert!(parsed.spans.iter().any(|s| s.phase == "Gram"));
        std::fs::remove_file(&trace_path).unwrap();
    }

    #[test]
    fn trace_out_flag_layers_over_the_parameter_file() {
        let dir = std::env::temp_dir();
        let cfg = dir.join(format!(
            "ratucker_cli_trace_argv_{}.cfg",
            std::process::id()
        ));
        std::fs::write(&cfg, "Global dims = 8 8\nRanks = 2 2\n").unwrap();
        let args: Vec<String> = [
            "driver",
            "--parameter-file",
            cfg.to_str().unwrap(),
            "--trace-out",
            "/tmp/trace.json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let p = params_from_argv(&args).unwrap();
        assert_eq!(p.get("Trace out"), Some("/tmp/trace.json"));
        std::fs::remove_file(&cfg).unwrap();
    }

    #[test]
    fn size_suffixes_parse() {
        assert_eq!(parse_size("1048576"), Some(1 << 20));
        assert_eq!(parse_size("64K"), Some(64 << 10));
        assert_eq!(parse_size("64k"), Some(64 << 10));
        assert_eq!(parse_size("256 MiB"), Some(256 << 20));
        assert_eq!(parse_size("2GB"), Some(2 << 30));
        assert_eq!(parse_size("512b"), Some(512));
        assert_eq!(parse_size("0"), None);
        assert_eq!(parse_size("lots"), None);
        assert_eq!(parse_size("-3M"), None);
    }

    #[test]
    fn mem_budget_key_parses_and_rejects_garbage() {
        let p = Params::parse("Mem budget = 128M\n").unwrap();
        assert_eq!(mem_budget(&p).unwrap(), Some(128 << 20));
        assert_eq!(mem_budget(&Params::parse("").unwrap()).unwrap(), None);
        let bad = Params::parse("Mem budget = plenty\n").unwrap();
        assert!(mem_budget(&bad).is_err());
    }

    #[test]
    fn mem_budget_flag_layers_over_the_parameter_file() {
        let dir = std::env::temp_dir();
        let cfg = dir.join(format!("ratucker_cli_mem_argv_{}.cfg", std::process::id()));
        std::fs::write(&cfg, "Global dims = 8 8\nRanks = 2 2\n").unwrap();
        let args: Vec<String> = [
            "driver",
            "--parameter-file",
            cfg.to_str().unwrap(),
            "--mem-budget",
            "64M",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let p = params_from_argv(&args).unwrap();
        assert_eq!(p.get("Mem budget"), Some("64M"));
        std::fs::remove_file(&cfg).unwrap();
    }

    #[test]
    fn threads_key_parses_saturates_and_rejects_garbage() {
        let p = Params::parse("Threads = 4\n").unwrap();
        assert_eq!(threads(&p).unwrap(), Some(4));
        assert_eq!(threads(&Params::parse("").unwrap()).unwrap(), None);
        let big = Params::parse("Threads = 99999999\n").unwrap();
        assert_eq!(
            threads(&big).unwrap(),
            Some(ratucker_tensor::par::MAX_THREADS)
        );
        for bad in ["Threads = 0\n", "Threads = two\n", "Threads = -1\n"] {
            assert!(threads(&Params::parse(bad).unwrap()).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn threads_flag_layers_over_the_parameter_file() {
        let dir = std::env::temp_dir();
        let cfg = dir.join(format!(
            "ratucker_cli_threads_argv_{}.cfg",
            std::process::id()
        ));
        std::fs::write(&cfg, "Global dims = 8 8\nRanks = 2 2\nThreads = 1\n").unwrap();
        let args: Vec<String> = [
            "driver",
            "--parameter-file",
            cfg.to_str().unwrap(),
            "--threads",
            "2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let p = params_from_argv(&args).unwrap();
        assert_eq!(p.get("Threads"), Some("2"));
        std::fs::remove_file(&cfg).unwrap();
    }

    #[test]
    fn generous_mem_budget_leaves_the_run_bit_identical() {
        let base = "Global dims = 12 10 8\nConstruction Ranks = 3 3 2\n\
                    Decomposition Ranks = 2 2 2\nNoise = 0.01\nProcessor grid dims = 1 2 2\n\
                    HOOI-Adapt Threshold = 0.05\nHOOI max iters = 3\n\
                    Rank Growth Factor = 2.0\nPrecision = double\n";
        let plain = run_hooi_driver::<f64>(&Params::parse(base).unwrap()).unwrap();
        let p = Params::parse(&format!("{base}Mem budget = 1G\n")).unwrap();
        let budgeted = run_hooi_driver::<f64>(&p).unwrap();
        // A budget no allocation ever hits admits at rung 0 and changes
        // nothing: same arithmetic, same decisions.
        assert_eq!(budgeted.rel_error, plain.rel_error);
        assert_eq!(budgeted.ranks, plain.ranks);
    }

    #[test]
    fn multithreaded_run_is_bit_identical_to_serial() {
        let base = "Global dims = 12 10 8\nConstruction Ranks = 3 3 2\n\
                    Decomposition Ranks = 2 2 2\nNoise = 0.01\nProcessor grid dims = 1 2 2\n\
                    HOOI-Adapt Threshold = 0.05\nHOOI max iters = 3\nPrecision = double\n";
        let serial =
            run_hooi_driver::<f64>(&Params::parse(&format!("{base}Threads = 1\n")).unwrap())
                .unwrap();
        let threaded =
            run_hooi_driver::<f64>(&Params::parse(&format!("{base}Threads = 4\n")).unwrap())
                .unwrap();
        ratucker_tensor::par::set_num_threads(1);
        assert_eq!(serial.rel_error.to_bits(), threaded.rel_error.to_bits());
        assert_eq!(serial.ranks, threaded.ranks);
        let bits = |v: &[f64]| v.iter().map(|e| e.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&serial.sweep_errors), bits(&threaded.sweep_errors));
    }

    #[test]
    fn hopeless_mem_budget_is_refused_before_launch() {
        let p = Params::parse(
            "Global dims = 12 10 8\nConstruction Ranks = 3 3 2\n\
             Decomposition Ranks = 2 2 2\nNoise = 0.01\nProcessor grid dims = 1 2 2\n\
             HOOI-Adapt Threshold = 0.05\nHOOI max iters = 3\n\
             Rank Growth Factor = 2.0\nPrecision = double\nMem budget = 1K\n",
        )
        .unwrap();
        let err = run_hooi_driver::<f64>(&p).unwrap_err().to_string();
        assert!(err.contains("refused"), "{err}");
        assert!(err.contains("--mem-budget"), "{err}");
    }

    #[test]
    fn input_shape_mismatch_is_error() {
        let dir = std::env::temp_dir();
        let input = dir.join(format!("ratucker_cli_mismatch_{}.rtt", std::process::id()));
        let x = SyntheticSpec::new(&[6, 6], &[2, 2], 0.0, 1).build::<f32>();
        ratucker_tensor::io::write_rtt(&input, &x).unwrap();
        let p = Params::parse(&format!(
            "Global dims = 6 7\nRanks = 2 2\nInput file = {}\n",
            input.display()
        ))
        .unwrap();
        assert!(run_sthosvd_driver::<f32>(&p).is_err());
        std::fs::remove_file(&input).unwrap();
    }
}
