//! TuckerMPI-style parameter files.
//!
//! The paper's artifact drives its drivers with `key = value` files:
//!
//! ```text
//! Print options = true
//! Print timings = true
//! Noise = 0.0001
//! SV Threshold = 0.0
//! Perform STHOSVD = true
//! # 4D grid with 8 processors
//! Processor grid dims = 1 2 2 2
//! Global dims = 100 100 100 100
//! Ranks = 10 10 10 10
//! ```
//!
//! This module parses that format: one `key = value` per line, `#` starts
//! a comment, keys are case-sensitive phrases, list values are
//! whitespace-separated.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// A parsed parameter file.
#[derive(Clone, Debug, Default)]
pub struct Params {
    entries: BTreeMap<String, String>,
}

/// Parameter lookup/parse failure.
#[derive(Debug)]
pub enum ParamError {
    /// The key is absent and no default applies.
    Missing(String),
    /// The value failed to parse.
    Invalid {
        /// The offending key.
        key: String,
        /// Its raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// A line without `=` or an empty key.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::Missing(k) => write!(f, "missing required parameter `{k}`"),
            ParamError::Invalid {
                key,
                value,
                expected,
            } => {
                write!(f, "parameter `{key}` = `{value}` is not a valid {expected}")
            }
            ParamError::Syntax { line, text } => {
                write!(f, "line {line}: expected `key = value`, got `{text}`")
            }
        }
    }
}

impl std::error::Error for ParamError {}

impl Params {
    /// Parses parameter text.
    pub fn parse(text: &str) -> Result<Params, ParamError> {
        let mut entries = BTreeMap::new();
        for (i, raw) in text.lines().enumerate() {
            let line = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ParamError::Syntax {
                    line: i + 1,
                    text: raw.to_string(),
                });
            };
            let key = key.trim();
            if key.is_empty() {
                return Err(ParamError::Syntax {
                    line: i + 1,
                    text: raw.to_string(),
                });
            }
            entries.insert(key.to_string(), value.trim().to_string());
        }
        Ok(Params { entries })
    }

    /// Loads and parses a parameter file.
    pub fn load(path: impl AsRef<Path>) -> Result<Params, Box<dyn std::error::Error>> {
        let text = std::fs::read_to_string(path)?;
        Ok(Self::parse(&text)?)
    }

    /// Raw string value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(|s| s.as_str())
    }

    /// Sets (or overrides) a key — how command-line flags such as
    /// `--checkpoint-dir` and `--resume` are layered over the file.
    pub fn set(&mut self, key: &str, value: &str) {
        self.entries.insert(key.to_string(), value.to_string());
    }

    /// All keys, for `Print options = true` echoes.
    pub fn keys(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Boolean with a default (`true`/`false`, case-insensitive).
    pub fn bool_or(&self, key: &str, default: bool) -> Result<bool, ParamError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => match v.to_ascii_lowercase().as_str() {
                "true" | "1" | "yes" => Ok(true),
                "false" | "0" | "no" => Ok(false),
                _ => Err(ParamError::Invalid {
                    key: key.to_string(),
                    value: v.to_string(),
                    expected: "boolean",
                }),
            },
        }
    }

    /// Float with a default.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, ParamError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ParamError::Invalid {
                key: key.to_string(),
                value: v.to_string(),
                expected: "floating-point number",
            }),
        }
    }

    /// Integer with a default.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, ParamError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ParamError::Invalid {
                key: key.to_string(),
                value: v.to_string(),
                expected: "nonnegative integer",
            }),
        }
    }

    /// Required whitespace-separated integer list (e.g. `Global dims`).
    pub fn usize_list(&self, key: &str) -> Result<Vec<usize>, ParamError> {
        let v = self
            .get(key)
            .ok_or_else(|| ParamError::Missing(key.to_string()))?;
        v.split_whitespace()
            .map(|tok| {
                tok.parse().map_err(|_| ParamError::Invalid {
                    key: key.to_string(),
                    value: v.to_string(),
                    expected: "list of nonnegative integers",
                })
            })
            .collect()
    }

    /// Optional integer list.
    pub fn usize_list_opt(&self, key: &str) -> Result<Option<Vec<usize>>, ParamError> {
        if self.get(key).is_none() {
            return Ok(None);
        }
        self.usize_list(key).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
Print options = true
Print timings = true
Noise = 0.0001
SV Threshold = 0.0
Perform STHOSVD = true
# 4D grid with 8 processors
Processor grid dims = 1 2 2 2
Global dims = 100 100 100 100
Ranks = 10 10 10 10
";

    #[test]
    fn parses_the_artifact_example() {
        let p = Params::parse(SAMPLE).unwrap();
        assert!(p.bool_or("Print options", false).unwrap());
        assert_eq!(p.f64_or("Noise", 0.0).unwrap(), 0.0001);
        assert_eq!(p.f64_or("SV Threshold", 1.0).unwrap(), 0.0);
        assert_eq!(
            p.usize_list("Processor grid dims").unwrap(),
            vec![1, 2, 2, 2]
        );
        assert_eq!(p.usize_list("Global dims").unwrap(), vec![100; 4]);
        assert_eq!(p.usize_list("Ranks").unwrap(), vec![10; 4]);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = Params::parse("# nothing\n\n  A = 1 # trailing\n").unwrap();
        assert_eq!(p.usize_or("A", 0).unwrap(), 1);
    }

    #[test]
    fn defaults_apply_when_missing() {
        let p = Params::parse("").unwrap();
        assert_eq!(p.usize_or("HOOI max iters", 2).unwrap(), 2);
        assert!(!p.bool_or("Dimension Tree Memoization", false).unwrap());
        assert!(p.usize_list_opt("Ranks").unwrap().is_none());
    }

    #[test]
    fn missing_required_list_is_error() {
        let p = Params::parse("").unwrap();
        assert!(matches!(
            p.usize_list("Global dims"),
            Err(ParamError::Missing(_))
        ));
    }

    #[test]
    fn invalid_values_are_errors() {
        let p = Params::parse("Noise = lots\nRanks = 1 two 3\nFlag = maybe").unwrap();
        assert!(p.f64_or("Noise", 0.0).is_err());
        assert!(p.usize_list("Ranks").is_err());
        assert!(p.bool_or("Flag", false).is_err());
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = Params::parse("A = 1\nnot a pair\n").unwrap_err();
        match err {
            ParamError::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn later_entries_override_earlier() {
        let p = Params::parse("A = 1\nA = 2\n").unwrap();
        assert_eq!(p.usize_or("A", 0).unwrap(), 2);
    }
}
