//! Dataset generation driver — the stand-in for the artifact's
//! `download-setup-miranda.sh` step: materializes one of the simulation
//! stand-ins (or a synthetic low-rank tensor) as a raw file the
//! `sthosvd`/`hooi` drivers can consume via `Input file`.
//!
//! ```sh
//! cargo run --release -p ratucker-cli --bin generate -- --parameter-file GEN.cfg
//! ```
//!
//! Keys: `Dataset` (`miranda` | `hcci` | `sp` | `synthetic`), `Scale`
//! (dataset size multiplier), `Output file`, `Precision`; synthetic mode
//! additionally reads `Global dims`, `Construction Ranks`, `Noise`,
//! `Seed`.

use ratucker::prelude::*;
use ratucker_cli::{maybe_print_options, parameter_file_from_args, precision, Params, Precision};
use ratucker_datasets::{hcci_like, miranda_like, sp_like, DatasetSpec};
use ratucker_tensor::dense::DenseTensor;
use ratucker_tensor::io::IoScalar;

fn build_spec(params: &Params) -> Result<Option<DatasetSpec>, Box<dyn std::error::Error>> {
    let scale = params.usize_or("Scale", 4)?;
    Ok(match params.get("Dataset").unwrap_or("synthetic") {
        "miranda" => Some(miranda_like(scale)),
        "hcci" => Some(hcci_like(scale)),
        "sp" => Some(sp_like(scale)),
        "synthetic" => None,
        other => return Err(format!("unknown Dataset `{other}`").into()),
    })
}

fn run<T: IoScalar>(params: &Params) -> Result<(), Box<dyn std::error::Error>> {
    let output = params.get("Output file").ok_or("missing `Output file`")?;
    let x: DenseTensor<T> = match build_spec(params)? {
        Some(spec) => {
            println!("generating {} …", spec.name);
            spec.build()
        }
        None => {
            let dims = params.usize_list("Global dims")?;
            let ranks = params.usize_list("Construction Ranks")?;
            let noise = params.f64_or("Noise", 1e-4)?;
            let seed = params.usize_or("Seed", 0)? as u64;
            println!("generating synthetic {dims:?} with ranks {ranks:?} …");
            SyntheticSpec::new(&dims, &ranks, noise, seed).build()
        }
    };
    if output.ends_with(".rtt") {
        ratucker_tensor::io::write_rtt(output, &x)?;
    } else {
        ratucker_tensor::io::write_raw(output, &x)?;
    }
    println!(
        "wrote {:?} ({} entries, {} MB) to {output}",
        x.shape().dims(),
        x.num_entries(),
        x.num_entries() * std::mem::size_of::<T>() / 1_000_000
    );
    println!(
        "hint: set `Input file = {output}` and `Global dims = {}` in an",
        x.shape()
            .dims()
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!("STHOSVD/HOOI parameter file to compress it.");
    Ok(())
}

fn main() {
    let params = match parameter_file_from_args() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    maybe_print_options(&params);
    let res = match precision(&params).unwrap_or(Precision::Single) {
        Precision::Single => run::<f32>(&params),
        Precision::Double => run::<f64>(&params),
    };
    if let Err(e) = res {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
