//! HOOI driver (the artifact's `hooi` binary).
//!
//! ```sh
//! cargo run --release -p ratucker-cli --bin hooi -- --parameter-file HOOI.cfg
//! ```
//!
//! The variant is selected exactly as in the paper's artifact table:
//!
//! | variant  | Dimension Tree Memoization | SVD Method |
//! |----------|----------------------------|------------|
//! | HOOI     | false                      | 0          |
//! | HOOI-DT  | true                       | 0          |
//! | HOSI     | false                      | 2          |
//! | HOSI-DT  | true                       | 2          |
//!
//! `HOOI-Adapt Threshold > 0` switches to the rank-adaptive formulation.

use ratucker_cli::{
    maybe_print_options, maybe_print_timings, parameter_file_from_args, precision, run_hooi_driver,
    Precision,
};

fn main() {
    let params = match parameter_file_from_args() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    maybe_print_options(&params);
    let prec = precision(&params).unwrap_or(Precision::Single);
    let dt = params
        .bool_or("Dimension Tree Memoization", false)
        .unwrap_or(false);
    let svd = params.usize_or("SVD Method", 0).unwrap_or(0);
    let adapt = params.f64_or("HOOI-Adapt Threshold", 0.0).unwrap_or(0.0);
    let variant = match (dt, svd) {
        (false, 0) => "HOOI",
        (true, 0) => "HOOI-DT",
        (false, 2) => "HOSI",
        (true, 2) => "HOSI-DT",
        _ => "HOOI(?)",
    };
    println!(
        "Running {}{} ({:?} precision; SVD Method = {}, Dimension Tree Memoization = {})…",
        if adapt > 0.0 { "rank-adaptive " } else { "" },
        variant,
        prec,
        svd,
        dt
    );
    let outcome = match prec {
        Precision::Single => run_hooi_driver::<f32>(&params),
        Precision::Double => run_hooi_driver::<f64>(&params),
    };
    match outcome {
        Ok(out) => {
            println!("{variant} finished:");
            for (k, e) in out.sweep_errors.iter().enumerate() {
                println!("  iteration {}: relative error = {e:.6}", k + 1);
            }
            println!("  final ranks       = {:?}", out.ranks);
            println!("  compression ratio = {:.1}x", out.compression);
            maybe_print_timings(&params, &out.timings);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
