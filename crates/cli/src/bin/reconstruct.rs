//! Reconstruction driver: load a stored Tucker decomposition (the
//! `Output prefix` files of the `sthosvd`/`hooi` drivers) and decompress
//! either the full tensor or one hyper-rectangular region — the fast
//! subtensor-visualization use case of the paper's introduction.
//!
//! ```sh
//! cargo run --release -p ratucker-cli --bin reconstruct -- --parameter-file RECON.cfg
//! ```
//!
//! Keys: `Decomposition prefix` (required), `Output file` (required, raw
//! little-endian), `Precision`, and optionally `Region offsets` +
//! `Region sizes` (whitespace-separated, one entry per mode).

use ratucker::TuckerTensor;
use ratucker_cli::{maybe_print_options, parameter_file_from_args, precision, Params, Precision};
use ratucker_tensor::dense::DenseTensor;
use ratucker_tensor::io::IoScalar;
use ratucker_tensor::matrix::Matrix;

fn load_tucker<T: IoScalar>(prefix: &str) -> Result<TuckerTensor<T>, Box<dyn std::error::Error>> {
    let core: DenseTensor<T> = ratucker_tensor::io::read_rtt(format!("{prefix}_core.rtt"))?;
    let mut factors = Vec::with_capacity(core.order());
    for k in 0..core.order() {
        let t: DenseTensor<T> = ratucker_tensor::io::read_rtt(format!("{prefix}_factor_{k}.rtt"))?;
        if t.order() != 2 {
            return Err(format!("factor {k} is not a matrix").into());
        }
        factors.push(Matrix::from_vec(t.dim(0), t.dim(1), t.clone().into_vec()));
    }
    Ok(TuckerTensor::new(core, factors))
}

fn run<T: IoScalar>(params: &Params) -> Result<(), Box<dyn std::error::Error>> {
    let prefix = params
        .get("Decomposition prefix")
        .ok_or("missing `Decomposition prefix`")?;
    let output = params.get("Output file").ok_or("missing `Output file`")?;
    let tucker = load_tucker::<T>(prefix)?;
    println!(
        "loaded decomposition: ranks {:?}, outer dims {:?} ({:.1}x compression)",
        tucker.ranks(),
        tucker.outer_dims(),
        tucker.compression_ratio()
    );
    let result = match (
        params.usize_list_opt("Region offsets")?,
        params.usize_list_opt("Region sizes")?,
    ) {
        (Some(offsets), Some(sizes)) => {
            println!("reconstructing region offsets={offsets:?} sizes={sizes:?}…");
            tucker.reconstruct_region(&offsets, &sizes)
        }
        (None, None) => {
            println!("reconstructing the full tensor…");
            tucker.reconstruct()
        }
        _ => return Err("`Region offsets` and `Region sizes` must be given together".into()),
    };
    ratucker_tensor::io::write_raw(output, &result)?;
    println!(
        "wrote {} entries ({} bytes) to {output}",
        result.num_entries(),
        result.num_entries() * std::mem::size_of::<T>()
    );
    Ok(())
}

fn main() {
    let params = match parameter_file_from_args() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    maybe_print_options(&params);
    let prec = precision(&params).unwrap_or(Precision::Single);
    let res = match prec {
        Precision::Single => run::<f32>(&params),
        Precision::Double => run::<f64>(&params),
    };
    if let Err(e) = res {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
