//! STHOSVD driver (the artifact's `sthosvd` binary).
//!
//! ```sh
//! cargo run --release -p ratucker-cli --bin sthosvd -- --parameter-file STHOSVD.cfg
//! ```

use ratucker_cli::{
    maybe_print_options, maybe_print_timings, parameter_file_from_args, precision,
    run_sthosvd_driver, Precision,
};

fn main() {
    let params = match parameter_file_from_args() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    maybe_print_options(&params);
    let prec = precision(&params).unwrap_or(Precision::Single);
    println!("Running STHOSVD ({:?} precision)…", prec);
    let outcome = match prec {
        Precision::Single => run_sthosvd_driver::<f32>(&params),
        Precision::Double => run_sthosvd_driver::<f64>(&params),
    };
    match outcome {
        Ok(out) => {
            println!("STHOSVD finished:");
            println!("  relative error    = {:.6}", out.rel_error);
            println!("  ranks             = {:?}", out.ranks);
            println!("  compression ratio = {:.1}x", out.compression);
            maybe_print_timings(&params, &out.timings);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
