//! `served` — the compression-service daemon.
//!
//! Boots a warm universe and serves the newline-delimited protocol of
//! [`ratucker_serve::protocol`] on stdin/stdout (the sandbox-friendly
//! stand-in for a network front end): one `ok …`/`err …` line per
//! request, `shutdown` (or EOF) drains the queues and prints the
//! lifetime report.
//!
//! ```sh
//! printf 'compress acme f dims=12x10x8 ranks=3x3x2\nquery acme f off=0,0,0 len=2,2,2\nshutdown\n' \
//!     | cargo run --release -p ratucker-cli --bin served -- --p 4
//! ```

use ratucker_serve::{parse_line, Command, JobOutcome, ServeConfig, Service};
use std::io::{BufRead, Write};

fn usage() -> ! {
    eprintln!(
        "usage: served [--p N] [--threads N] [--mem-budget SIZE] [--ingest-limit SIZE] \
         [--queue-cap N] [--query-workers N] [--checkpoint-dir DIR]"
    );
    std::process::exit(2);
}

fn parse_config() -> ServeConfig {
    let mut cfg = ServeConfig::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            eprintln!("served: {flag} needs a value");
            usage();
        };
        let bad = |what: &str| -> ! {
            eprintln!("served: bad {what}: {value:?}");
            usage();
        };
        match flag.as_str() {
            "--p" => cfg.p = value.parse().unwrap_or_else(|_| bad("--p")),
            // Installed before Service::start spawns the warm universe's
            // rank threads; results are bit-identical at any setting.
            "--threads" => ratucker_tensor::par::set_num_threads(
                value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| bad("--threads")),
            ),
            "--mem-budget" => {
                cfg.mem_budget =
                    Some(ratucker_mem::parse_size(value).unwrap_or_else(|| bad("--mem-budget")))
            }
            "--ingest-limit" => {
                cfg.ingest_limit =
                    Some(ratucker_mem::parse_size(value).unwrap_or_else(|| bad("--ingest-limit")))
            }
            "--queue-cap" => cfg.queue_cap = value.parse().unwrap_or_else(|_| bad("--queue-cap")),
            "--query-workers" => {
                cfg.query_workers = value.parse().unwrap_or_else(|_| bad("--query-workers"))
            }
            "--checkpoint-dir" => cfg.checkpoint_dir = Some(value.into()),
            _ => usage(),
        }
    }
    if cfg.p == 0 || cfg.queue_cap == 0 || cfg.query_workers == 0 {
        eprintln!("served: --p, --queue-cap, --query-workers must be positive");
        usage();
    }
    cfg
}

fn render(outcome: &JobOutcome) -> String {
    match outcome {
        JobOutcome::Compressed {
            ranks,
            rel_error,
            storage_entries,
            recovery,
            ..
        } => {
            let mut line = format!(
                "ok compressed ranks={ranks:?} rel_error={rel_error:.6} entries={storage_entries}"
            );
            if recovery.recoveries > 0 || recovery.resumed_from_checkpoint {
                line.push_str(&format!(
                    " recovered recoveries={} restored={:?} resumed={}",
                    recovery.recoveries, recovery.restored_ranks, recovery.resumed_from_checkpoint
                ));
            }
            line
        }
        JobOutcome::Queried { entries, checksum } => {
            format!("ok queried entries={entries} checksum={checksum:.6e}")
        }
        JobOutcome::Status { report } => format!("ok {report}"),
        JobOutcome::Rejected { required, budget } => {
            format!("err admission refused: needs ~{required} B against a {budget} B budget")
        }
        JobOutcome::Failed { reason } => format!("err {reason}"),
    }
}

fn main() {
    let cfg = parse_config();
    let service = Service::start(cfg);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(out, "ready").expect("stdout");
    out.flush().expect("stdout");

    for line in stdin.lock().lines() {
        let line = line.expect("stdin");
        let response = match parse_line(&line) {
            Ok(None) => continue,
            Ok(Some(Command::Shutdown)) => break,
            Ok(Some(Command::Submit { tenant, request })) => {
                match service.submit(&tenant, request) {
                    // Lockstep front end: wait each job out so responses
                    // arrive in request order. Concurrency lives behind
                    // the queue (loadgen drives it in-process).
                    Ok(id) => render(&service.wait(id).0),
                    Err(e) => format!("err {e}"),
                }
            }
            Err(e) => format!("err {e}"),
        };
        writeln!(out, "{response}").expect("stdout");
        out.flush().expect("stdout");
    }

    let report = service.shutdown();
    writeln!(
        out,
        "bye submitted={} completed={} failed={} rejected={} stored={} partition_ok={}",
        report.submitted,
        report.completed,
        report.failed,
        report.rejected,
        report.stored_cores,
        report.partition_ok,
    )
    .expect("stdout");
}
