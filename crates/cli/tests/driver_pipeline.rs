//! End-to-end driver pipeline: compress with a parameter file, store the
//! decomposition, reload it, and verify region decompression against the
//! directly reconstructed tensor.

use ratucker::prelude::*;
use ratucker_cli::{run_hooi_driver, run_sthosvd_driver, write_tucker, Params};
use ratucker_tensor::dense::DenseTensor;
use ratucker_tensor::matrix::Matrix;

fn unique_prefix(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("ratucker_pipeline_{tag}_{}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

fn load_tucker_f32(prefix: &str) -> TuckerTensor<f32> {
    let core: DenseTensor<f32> =
        ratucker_tensor::io::read_rtt(format!("{prefix}_core.rtt")).unwrap();
    let factors = (0..core.order())
        .map(|k| {
            let t: DenseTensor<f32> =
                ratucker_tensor::io::read_rtt(format!("{prefix}_factor_{k}.rtt")).unwrap();
            Matrix::from_vec(t.dim(0), t.dim(1), t.clone().into_vec())
        })
        .collect();
    TuckerTensor::new(core, factors)
}

fn cleanup(prefix: &str, d: usize) {
    let _ = std::fs::remove_file(format!("{prefix}_core.rtt"));
    for k in 0..d {
        let _ = std::fs::remove_file(format!("{prefix}_factor_{k}.rtt"));
    }
}

#[test]
fn compress_store_reload_decompress_region() {
    let prefix = unique_prefix("sthosvd");
    let params = Params::parse(&format!(
        "Global dims = 16 14 12\nRanks = 3 3 3\nNoise = 0.005\nSeed = 4\n\
         Processor grid dims = 1 2 1\nOutput prefix = {prefix}\n"
    ))
    .unwrap();
    let out = run_sthosvd_driver::<f32>(&params).unwrap();
    assert!(out.rel_error < 0.05);

    // Reload from disk; the decomposition must match the reported ranks
    // and decompress regions consistently with the full reconstruction.
    let tucker = load_tucker_f32(&prefix);
    assert_eq!(tucker.ranks(), out.ranks);
    let full = tucker.reconstruct();
    let region = tucker.reconstruct_region(&[4, 0, 6], &[5, 14, 6]);
    for idx in region.shape().indices() {
        let gidx = [idx[0] + 4, idx[1], idx[2] + 6];
        assert!((region.get(&idx) - full.get(&gidx)).abs() < 1e-6);
    }
    cleanup(&prefix, 3);
}

#[test]
fn hooi_driver_stores_a_valid_decomposition() {
    let prefix = unique_prefix("hooi");
    let params = Params::parse(&format!(
        "Global dims = 12 12 12\nConstruction Ranks = 3 3 3\nDecomposition Ranks = 3 3 3\n\
         Noise = 0.01\nSeed = 7\nDimension Tree Memoization = true\nSVD Method = 2\n\
         HOOI max iters = 2\nOutput prefix = {prefix}\n"
    ))
    .unwrap();
    let out = run_hooi_driver::<f32>(&params).unwrap();
    assert!(out.rel_error < 0.05, "{}", out.rel_error);

    let tucker = load_tucker_f32(&prefix);
    // Error of the reloaded decomposition against the regenerated input.
    let x = SyntheticSpec::new(&[12, 12, 12], &[3, 3, 3], 0.01, 7).build::<f32>();
    let err = tucker.reconstruct().rel_error(&x);
    assert!(
        (err - out.rel_error).abs() < 1e-4,
        "{err} vs {}",
        out.rel_error
    );
    cleanup(&prefix, 3);
}

#[test]
fn write_tucker_roundtrip_preserves_factors_exactly() {
    let prefix = unique_prefix("roundtrip");
    let x = SyntheticSpec::new(&[10, 8], &[3, 2], 0.0, 1).build::<f32>();
    let res = sthosvd(&x, &SthosvdTruncation::Ranks(vec![3, 2]));
    write_tucker(&prefix, &res.tucker).unwrap();
    let back = load_tucker_f32(&prefix);
    assert_eq!(back.core.max_abs_diff(&res.tucker.core), 0.0);
    for (a, b) in back.factors.iter().zip(&res.tucker.factors) {
        assert_eq!(a.max_abs_diff(b), 0.0);
    }
    cleanup(&prefix, 2);
}
