//! Online straggler detection from per-rank slowness scores.
//!
//! A *straggler* is a rank that is alive and correct but persistently
//! slow — a gray failure the liveness-based detectors in
//! [`ratucker_mpi`] cannot see. This module turns a per-rank slowness
//! signal into a demotion verdict:
//!
//! * **Score source.** Online, the natural signal is the *induced
//!   wait*: how long every receiver spent blocked waiting on each
//!   sender ([`ratucker_mpi::TrafficStats::induced_wait_us`]). Offline,
//!   per-phase span self-times work too — see
//!   [`scores_from_breakdown`].
//! * **Flagging rule.** A rank is *suspected* in a window when its
//!   score exceeds `multiple ×` the median score **and** an absolute
//!   floor `min_secs` (so microsecond-scale scheduler noise on an
//!   otherwise idle run can never trip the detector). The suspect is
//!   the arg-max score; ties break toward the lowest rank so the
//!   verdict is deterministic.
//! * **Confirmation.** Only after the *same* rank is suspected in
//!   `consecutive` windows in a row does [`StragglerDetector::observe`]
//!   return it. A different suspect (or a clean window) resets the
//!   streak.
//!
//! The detector is intentionally ignorant of communicators and
//! recovery: callers map indices to ranks, agree on the verdict, and
//! drive the demotion themselves.

/// Tuning knobs for straggler detection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StragglerPolicy {
    /// A rank is suspected when its score exceeds `multiple ×` the
    /// median score across ranks. Must be `> 1.0` to be meaningful.
    pub multiple: f64,
    /// Consecutive suspect windows required before the verdict fires.
    pub consecutive: usize,
    /// Absolute score floor in seconds: scores at or below this never
    /// make a suspect, regardless of the relative rule.
    pub min_secs: f64,
}

impl StragglerPolicy {
    /// A policy with the given relative multiple and library defaults
    /// for the rest: 2 consecutive windows, 0.05 s floor.
    pub fn new(multiple: f64) -> StragglerPolicy {
        StragglerPolicy {
            multiple,
            consecutive: 2,
            min_secs: 0.05,
        }
    }

    /// Sets the confirmation streak length (clamped to at least 1).
    pub fn with_consecutive(mut self, consecutive: usize) -> StragglerPolicy {
        self.consecutive = consecutive.max(1);
        self
    }

    /// Sets the absolute score floor in seconds.
    pub fn with_min_secs(mut self, min_secs: f64) -> StragglerPolicy {
        self.min_secs = min_secs;
        self
    }
}

impl Default for StragglerPolicy {
    /// `multiple = 4.0`, `consecutive = 2`, `min_secs = 0.05`.
    fn default() -> StragglerPolicy {
        StragglerPolicy::new(4.0)
    }
}

/// Streak-tracking state for [`StragglerPolicy`].
#[derive(Clone, Debug)]
pub struct StragglerDetector {
    policy: StragglerPolicy,
    suspect: Option<usize>,
    streak: usize,
}

impl StragglerDetector {
    /// A fresh detector with no history.
    pub fn new(policy: StragglerPolicy) -> StragglerDetector {
        StragglerDetector {
            policy,
            suspect: None,
            streak: 0,
        }
    }

    /// The policy this detector was built with.
    pub fn policy(&self) -> StragglerPolicy {
        self.policy
    }

    /// The current suspect and streak length, if any window flagged one.
    pub fn suspect(&self) -> Option<(usize, usize)> {
        self.suspect.map(|s| (s, self.streak))
    }

    /// Clears all history. Call after any topology change — old
    /// indices no longer mean the same ranks.
    pub fn reset(&mut self) {
        self.suspect = None;
        self.streak = 0;
    }

    /// Feeds one window of per-rank slowness scores (seconds) and
    /// returns the confirmed straggler's index once the same rank has
    /// been suspected `consecutive` windows in a row.
    pub fn observe(&mut self, scores_secs: &[f64]) -> Option<usize> {
        let Some(candidate) = suspect_in(scores_secs, &self.policy) else {
            self.reset();
            return None;
        };
        if self.suspect == Some(candidate) {
            self.streak += 1;
        } else {
            self.suspect = Some(candidate);
            self.streak = 1;
        }
        if self.streak >= self.policy.consecutive.max(1) {
            self.reset();
            Some(candidate)
        } else {
            None
        }
    }
}

/// The suspect for a single window, if any: the arg-max score
/// (lowest index on ties) when it clears both the relative and the
/// absolute thresholds.
fn suspect_in(scores_secs: &[f64], policy: &StragglerPolicy) -> Option<usize> {
    if scores_secs.len() < 2 || scores_secs.iter().any(|s| !s.is_finite()) {
        return None;
    }
    let (worst, score) =
        scores_secs
            .iter()
            .copied()
            .enumerate()
            .fold((0, f64::NEG_INFINITY), |(bi, bs), (i, s)| {
                if s > bs {
                    (i, s)
                } else {
                    (bi, bs)
                }
            });
    let med = median(scores_secs);
    let bar = policy.min_secs.max(policy.multiple * med);
    (score.is_finite() && score > bar && score > policy.min_secs).then_some(worst)
}

/// Median of a slice (mean of the middle two for even lengths).
fn median(xs: &[f64]) -> f64 {
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n == 0 {
        0.0
    } else if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Per-rank slowness scores from a span-trace breakdown: each rank's
/// total exclusive seconds summed over every phase. This is the
/// offline (post-mortem) counterpart to the online induced-wait
/// signal.
pub fn scores_from_breakdown(breakdown: &crate::analysis::PhaseBreakdown) -> Vec<f64> {
    let mut scores = vec![0.0; breakdown.ranks];
    for phase in &breakdown.phases {
        for (rank, s) in phase.self_secs.iter().enumerate() {
            if rank < scores.len() {
                scores[rank] += s;
            }
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::PhaseBreakdown;

    #[test]
    fn confirms_after_consecutive_windows_only() {
        let policy = StragglerPolicy::new(3.0)
            .with_consecutive(2)
            .with_min_secs(0.01);
        let mut det = StragglerDetector::new(policy);
        let slow = [0.1, 0.1, 2.0, 0.1];
        assert_eq!(det.observe(&slow), None);
        assert_eq!(det.suspect(), Some((2, 1)));
        assert_eq!(det.observe(&slow), Some(2));
        // Verdict clears history; the streak starts over.
        assert_eq!(det.suspect(), None);
        assert_eq!(det.observe(&slow), None);
    }

    #[test]
    fn a_clean_window_resets_the_streak() {
        let mut det = StragglerDetector::new(
            StragglerPolicy::new(3.0)
                .with_consecutive(2)
                .with_min_secs(0.01),
        );
        let slow = [0.1, 2.0, 0.1];
        let clean = [0.1, 0.1, 0.1];
        assert_eq!(det.observe(&slow), None);
        assert_eq!(det.observe(&clean), None);
        assert_eq!(det.suspect(), None);
        assert_eq!(det.observe(&slow), None);
        assert_eq!(det.observe(&slow), Some(1));
    }

    #[test]
    fn a_different_suspect_restarts_the_streak() {
        let mut det = StragglerDetector::new(
            StragglerPolicy::new(3.0)
                .with_consecutive(2)
                .with_min_secs(0.01),
        );
        assert_eq!(det.observe(&[2.0, 0.1, 0.1]), None);
        assert_eq!(det.observe(&[0.1, 2.0, 0.1]), None);
        assert_eq!(det.suspect(), Some((1, 1)));
        assert_eq!(det.observe(&[0.1, 2.0, 0.1]), Some(1));
    }

    #[test]
    fn min_secs_floor_suppresses_noise() {
        // Rank 1 is 100× the median, but everything is microseconds.
        let mut det = StragglerDetector::new(StragglerPolicy::new(2.0).with_consecutive(1));
        assert_eq!(det.observe(&[1e-6, 1e-4, 1e-6]), None);
        // Scale the same shape past the floor and it fires.
        assert_eq!(det.observe(&[0.01, 1.0, 0.01]), Some(1));
    }

    #[test]
    fn relative_rule_needs_the_multiple() {
        // 1.5× the median at multiple=4 is balanced enough.
        let mut det = StragglerDetector::new(StragglerPolicy::new(4.0).with_consecutive(1));
        assert_eq!(det.observe(&[1.0, 1.5, 1.0]), None);
        assert_eq!(det.observe(&[1.0, 4.5, 1.0]), Some(1));
    }

    #[test]
    fn ties_break_toward_the_lowest_rank() {
        let mut det = StragglerDetector::new(StragglerPolicy::new(2.0).with_consecutive(1));
        assert_eq!(det.observe(&[0.01, 3.0, 3.0, 0.01, 0.01]), Some(1));
    }

    #[test]
    fn degenerate_inputs_never_flag() {
        let mut det = StragglerDetector::new(StragglerPolicy::new(2.0).with_consecutive(1));
        assert_eq!(det.observe(&[]), None);
        assert_eq!(det.observe(&[5.0]), None);
        assert_eq!(det.observe(&[f64::NAN, 1.0]), None);
    }

    #[test]
    fn breakdown_scores_sum_self_time_across_phases() {
        use ratucker_mpi::KindSnapshot;
        let ev = |rank: usize, phase: &'static str, us: u64| crate::trace::SpanEvent {
            rank,
            phase,
            mode: None,
            depth: 0,
            t_start_us: 0,
            dur_us: us,
            self_dur_us: us,
            traffic: KindSnapshot::default(),
            gross_bytes: 0,
            gross_messages: 0,
            mem_hwm_bytes: 0,
            mem_live_bytes: 0,
        };
        let events = vec![
            ev(0, "ttm", 1_000_000),
            ev(1, "ttm", 3_000_000),
            ev(0, "gram", 500_000),
            ev(1, "gram", 500_000),
        ];
        let b = PhaseBreakdown::from_events(&events, 2);
        let scores = scores_from_breakdown(&b);
        assert!((scores[0] - 1.5).abs() < 1e-9);
        assert!((scores[1] - 3.5).abs() < 1e-9);
    }
}
