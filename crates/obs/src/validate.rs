//! Perf-model validation: measured per-phase communication volume vs
//! the analytic word counts of [`ratucker_perfmodel::costs`].
//!
//! The model's `words` field is the *critical-path per-rank* word
//! count; the simulator's traffic counters record every byte every
//! rank sent. The comparison therefore scales the prediction by
//! `elem_bytes × P` and accepts a documented multiplicative tolerance:
//!
//! * the model drops lower-order terms (a factor ≤ 2 on small
//!   problems where `r` is not ≪ `n`);
//! * `mpisim`'s collectives are linear/ring reference implementations,
//!   not the butterfly trees the latency terms assume — volume matches
//!   to a small constant, not exactly (allreduce = reduce + bcast
//!   moves `2(P-1)/P` of the butterfly's volume, a factor ≤ 2);
//! * rank-adaptive truncation makes the effective `r` drift below the
//!   configured cap mid-run.
//!
//! Compounded, a factor-[`DEFAULT_TOLERANCE`] band catches real
//! accounting bugs (phases attributed to the wrong label, double
//! counting, dropped instrumentation) while tolerating model
//! idealization. Phases whose measured volume is tiny
//! (latency-dominated, below [`ValidationConfig::min_bytes`]) are
//! reported but not enforced.

use crate::analysis::PhaseBreakdown;
use ratucker_mpi::KindSnapshot;
use ratucker_perfmodel::costs::{algorithm_cost, AlgKind, Problem};
use std::fmt;

/// Default multiplicative tolerance band (see module docs for the
/// factor-by-factor justification).
pub const DEFAULT_TOLERANCE: f64 = 4.0;

/// Phase labels validated by default: the bandwidth-dominated phases
/// whose model words are nonzero and whose instrumentation maps 1:1
/// onto a model label. `EVD`/`QR` are sequential (zero model words)
/// and `CoreAnalysis` is latency-dominated.
pub const DEFAULT_PHASES: [&str; 3] = ["TTM", "Gram", "SI"];

/// How to compare a trace against the model.
#[derive(Clone, Debug)]
pub struct ValidationConfig {
    /// Bytes per tensor element (4 for `f32`, 8 for `f64`).
    pub elem_bytes: usize,
    /// Accept measured/predicted ratios in `[1/tolerance, tolerance]`.
    pub tolerance: f64,
    /// Phase labels to enforce (others are reported, not enforced).
    pub phases: Vec<&'static str>,
    /// Skip enforcement for phases measuring fewer bytes than this
    /// (latency-dominated phases are not volume-predictable).
    pub min_bytes: u64,
}

impl ValidationConfig {
    /// The default comparison for an `elem_bytes`-wide element type.
    pub fn new(elem_bytes: usize) -> ValidationConfig {
        ValidationConfig {
            elem_bytes,
            tolerance: DEFAULT_TOLERANCE,
            phases: DEFAULT_PHASES.to_vec(),
            min_bytes: 1024,
        }
    }
}

/// One phase's measured-vs-predicted comparison.
#[derive(Clone, Debug)]
pub struct PhaseValidation {
    /// Phase label.
    pub phase: &'static str,
    /// Bytes all ranks sent inside spans of this phase (exclusive).
    pub measured_bytes: u64,
    /// Model prediction: `words × elem_bytes × P`.
    pub predicted_bytes: f64,
    /// `measured / predicted` (`inf` when the model predicts zero but
    /// traffic was measured; 1.0 when both are zero).
    pub ratio: f64,
    /// Whether this phase is enforced by [`ValidationReport::check`].
    pub enforced: bool,
    /// Per-collective-kind measured traffic for the phase (e.g. the
    /// Gram allreduce vs the TTM reduce-scatter split).
    pub traffic: KindSnapshot,
}

impl PhaseValidation {
    /// Is the ratio inside the `[1/tol, tol]` band?
    pub fn within(&self, tolerance: f64) -> bool {
        self.ratio >= 1.0 / tolerance && self.ratio <= tolerance
    }
}

/// A measured phase deviated from the model beyond the tolerance.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfDeviation {
    /// Offending phase.
    pub phase: String,
    /// Bytes measured across ranks.
    pub measured_bytes: u64,
    /// Bytes the model predicted.
    pub predicted_bytes: f64,
    /// measured / predicted.
    pub ratio: f64,
    /// The tolerance band that was exceeded.
    pub tolerance: f64,
}

impl fmt::Display for PerfDeviation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "perf-model deviation in phase {:?}: measured {} B vs predicted {:.0} B \
             (ratio {:.3}, tolerance ×{})",
            self.phase, self.measured_bytes, self.predicted_bytes, self.ratio, self.tolerance
        )
    }
}

impl std::error::Error for PerfDeviation {}

/// The full comparison of one traced run against the cost model.
#[derive(Clone, Debug)]
pub struct ValidationReport {
    /// Algorithm the model was evaluated for.
    pub alg: AlgKind,
    /// Number of ranks `P`.
    pub ranks: usize,
    /// Tolerance band used.
    pub tolerance: f64,
    /// Per-phase comparisons, in model phase order; trace phases with
    /// no model counterpart are appended with `predicted_bytes = 0`.
    pub phases: Vec<PhaseValidation>,
}

impl ValidationReport {
    /// Returns the first enforced phase outside the tolerance band, if
    /// any.
    pub fn check(&self) -> Result<(), PerfDeviation> {
        for p in &self.phases {
            if p.enforced && !p.within(self.tolerance) {
                return Err(PerfDeviation {
                    phase: p.phase.to_string(),
                    measured_bytes: p.measured_bytes,
                    predicted_bytes: p.predicted_bytes,
                    ratio: p.ratio,
                    tolerance: self.tolerance,
                });
            }
        }
        Ok(())
    }

    /// Looks up a phase comparison by label.
    pub fn phase(&self, label: &str) -> Option<&PhaseValidation> {
        self.phases.iter().find(|p| p.phase == label)
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "perf-model validation: {} on P={} (tolerance ×{})",
            self.alg.name(),
            self.ranks,
            self.tolerance
        )?;
        writeln!(
            f,
            "{:<14} {:>14} {:>14} {:>8}  status",
            "phase", "measured B", "predicted B", "ratio"
        )?;
        for p in &self.phases {
            let status = if !p.enforced {
                "info"
            } else if p.within(self.tolerance) {
                "ok"
            } else {
                "DEVIATION"
            };
            writeln!(
                f,
                "{:<14} {:>14} {:>14.0} {:>8.3}  {}",
                p.phase, p.measured_bytes, p.predicted_bytes, p.ratio, status
            )?;
        }
        Ok(())
    }
}

/// Compares a traced run's per-phase send volume against the
/// Table 2 cost model.
///
/// `breakdown` comes from [`PhaseBreakdown::from_trace`]; `grid` is the
/// processor grid the run used (`Π grid = P`). Model predictions are
/// `phase.words × elem_bytes × P` since the model's `words` is the
/// critical-path (per-rank) count while measurement sums all ranks.
pub fn validate_against_model(
    breakdown: &PhaseBreakdown,
    alg: AlgKind,
    prob: &Problem,
    grid: &[usize],
    cfg: &ValidationConfig,
) -> ValidationReport {
    let p: usize = grid.iter().product();
    let cost = algorithm_cost(alg, prob, grid);
    let mut phases = Vec::new();
    for mp in &cost.phases {
        let measured = breakdown.phase(mp.label);
        let measured_bytes = measured.map_or(0, |s| s.total_bytes());
        let predicted_bytes = mp.words * cfg.elem_bytes as f64 * p as f64;
        let ratio = ratio_of(measured_bytes, predicted_bytes);
        phases.push(PhaseValidation {
            phase: mp.label,
            measured_bytes,
            predicted_bytes,
            ratio,
            enforced: cfg.phases.contains(&mp.label)
                && measured_bytes >= cfg.min_bytes
                && predicted_bytes > 0.0,
            traffic: measured.map(|s| s.traffic).unwrap_or_default(),
        });
    }
    // Trace phases the model does not know (sweep, Recovery, …):
    // report their volume for context, never enforce.
    for s in &breakdown.phases {
        if phases.iter().any(|p| p.phase == s.phase) {
            continue;
        }
        phases.push(PhaseValidation {
            phase: s.phase,
            measured_bytes: s.total_bytes(),
            predicted_bytes: 0.0,
            ratio: ratio_of(s.total_bytes(), 0.0),
            enforced: false,
            traffic: s.traffic,
        });
    }
    ValidationReport {
        alg,
        ranks: p,
        tolerance: cfg.tolerance,
        phases,
    }
}

fn ratio_of(measured: u64, predicted: f64) -> f64 {
    if predicted > 0.0 {
        measured as f64 / predicted
    } else if measured == 0 {
        1.0
    } else {
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanEvent;

    fn event(rank: usize, phase: &'static str, bytes: u64) -> SpanEvent {
        let mut traffic = KindSnapshot::default();
        traffic.bytes[4] = bytes; // charge to allreduce's slot
        traffic.messages[4] = 1;
        SpanEvent {
            rank,
            phase,
            mode: None,
            depth: 0,
            t_start_us: 0,
            dur_us: 1,
            self_dur_us: 1,
            traffic,
            gross_bytes: bytes,
            gross_messages: 1,
            mem_hwm_bytes: 0,
            mem_live_bytes: 0,
        }
    }

    fn setup(scale: f64) -> (ValidationReport, f64) {
        let prob = Problem::new(32, 4, 3, 2);
        let grid = [1usize, 2, 2];
        let p: usize = grid.iter().product();
        let cfg = ValidationConfig::new(8);
        let cost = algorithm_cost(AlgKind::Hosi, &prob, &grid);
        let ttm_pred = cost.phases.iter().find(|c| c.label == "TTM").unwrap().words
            * cfg.elem_bytes as f64
            * p as f64;
        // Fabricate a trace whose TTM volume is `scale ×` the prediction
        // and whose SI volume matches exactly.
        let si_pred = cost.phases.iter().find(|c| c.label == "SI").unwrap().words
            * cfg.elem_bytes as f64
            * p as f64;
        let mut events = Vec::new();
        for r in 0..p {
            events.push(event(r, "TTM", (ttm_pred * scale) as u64 / p as u64));
            events.push(event(r, "SI", si_pred as u64 / p as u64));
            events.push(event(r, "sweep", 10)); // unknown to the model
        }
        let breakdown = PhaseBreakdown::from_events(&events, p);
        (
            validate_against_model(&breakdown, AlgKind::Hosi, &prob, &grid, &cfg),
            ttm_pred,
        )
    }

    #[test]
    fn matching_volume_passes() {
        let (report, _) = setup(1.0);
        report.check().expect("exact volumes must validate");
        let ttm = report.phase("TTM").unwrap();
        assert!(ttm.enforced, "TTM must be an enforced phase");
        assert!((ttm.ratio - 1.0).abs() < 0.01, "ratio {}", ttm.ratio);
        // The per-kind split is carried through.
        assert!(ttm.traffic.bytes[4] > 0);
        // Unknown phases are informational only.
        let sweep = report.phase("sweep").unwrap();
        assert!(!sweep.enforced);
        assert!(sweep.ratio.is_infinite());
        // Display renders.
        assert!(format!("{report}").contains("TTM"));
    }

    #[test]
    fn large_deviation_is_flagged_with_typed_error() {
        let (report, ttm_pred) = setup(20.0);
        let err = report.check().expect_err("20× deviation must flag");
        assert_eq!(err.phase, "TTM");
        assert!(err.ratio > DEFAULT_TOLERANCE);
        assert!((err.predicted_bytes - ttm_pred).abs() < 1.0);
        assert!(format!("{err}").contains("deviation in phase"));
    }

    #[test]
    fn tiny_phases_are_not_enforced() {
        // Below min_bytes the phase is reported but never flagged.
        let prob = Problem::new(32, 4, 3, 1);
        let grid = [1usize, 1, 2];
        let cfg = ValidationConfig::new(8);
        let events = vec![event(0, "TTM", 16), event(1, "TTM", 16)];
        let breakdown = PhaseBreakdown::from_events(&events, 2);
        let report = validate_against_model(&breakdown, AlgKind::Hooi, &prob, &grid, &cfg);
        assert!(!report.phase("TTM").unwrap().enforced);
        report.check().unwrap();
    }
}
