//! Per-tenant accounting for a multi-tenant service.
//!
//! The serve layer runs many jobs for many tenants over one warm
//! fabric, and the fabric's [`ratucker_mpi::TrafficStats`] counters are
//! global. This module keeps the per-tenant books: each tenant
//! accumulates a [`KindSnapshot`] of the traffic its jobs caused (the
//! service measures a global delta around each fabric-touching job and
//! charges it here), job counts by outcome, and the high-water memory
//! mark of its heaviest job.
//!
//! The key property is the **partition invariant**, mirroring the
//! per-kind invariant on the fabric itself: summed over tenants, the
//! charged bytes/messages must equal the global counter movement over
//! the same window exactly — every delivered byte is charged to exactly
//! one tenant, nothing double-counted, nothing orphaned.
//! [`TenantLedger::check_partition`] verifies this.

use ratucker_mpi::KindSnapshot;
use std::collections::BTreeMap;

/// One tenant's accumulated books.
#[derive(Clone, Debug, Default)]
pub struct TenantAccount {
    /// Fabric traffic charged to this tenant's jobs.
    pub traffic: KindSnapshot,
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs that finished successfully.
    pub completed: u64,
    /// Jobs that failed (after any recovery attempts).
    pub failed: u64,
    /// Jobs refused by admission control before running.
    pub rejected: u64,
    /// Largest per-job memory high-water mark seen, in bytes.
    pub peak_job_bytes: u64,
}

/// Per-tenant books for a service instance. Keys are tenant names;
/// iteration order is deterministic (sorted) for stable reports.
#[derive(Clone, Debug, Default)]
pub struct TenantLedger {
    accounts: BTreeMap<String, TenantAccount>,
}

impl TenantLedger {
    /// An empty ledger.
    pub fn new() -> TenantLedger {
        TenantLedger::default()
    }

    fn entry(&mut self, tenant: &str) -> &mut TenantAccount {
        self.accounts.entry(tenant.to_string()).or_default()
    }

    /// Charges a traffic delta (a global [`KindSnapshot`] movement
    /// measured around one of `tenant`'s jobs) to the tenant.
    pub fn charge_traffic(&mut self, tenant: &str, delta: &KindSnapshot) {
        self.entry(tenant).traffic.merge(delta);
    }

    /// Records a job acceptance.
    pub fn record_submitted(&mut self, tenant: &str) {
        self.entry(tenant).submitted += 1;
    }

    /// Records a successful job completion, with the job's memory
    /// high-water mark in bytes.
    pub fn record_completed(&mut self, tenant: &str, job_peak_bytes: u64) {
        let acc = self.entry(tenant);
        acc.completed += 1;
        acc.peak_job_bytes = acc.peak_job_bytes.max(job_peak_bytes);
    }

    /// Records a job failure.
    pub fn record_failed(&mut self, tenant: &str) {
        self.entry(tenant).failed += 1;
    }

    /// Records an admission-control rejection.
    pub fn record_rejected(&mut self, tenant: &str) {
        self.entry(tenant).rejected += 1;
    }

    /// The account for `tenant`, if it has any history.
    pub fn account(&self, tenant: &str) -> Option<&TenantAccount> {
        self.accounts.get(tenant)
    }

    /// All accounts, sorted by tenant name.
    pub fn accounts(&self) -> impl Iterator<Item = (&str, &TenantAccount)> {
        self.accounts.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of tenants with any history.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// Sum of all tenants' charged traffic.
    pub fn total_traffic(&self) -> KindSnapshot {
        let mut out = KindSnapshot::default();
        for acc in self.accounts.values() {
            out.merge(&acc.traffic);
        }
        out
    }

    /// Checks the partition invariant against the global counter
    /// movement over the same accounting window: per-tenant charges must
    /// sum to `global` *exactly* (bytes and messages). Returns
    /// `((tenant_bytes, global_bytes), (tenant_msgs, global_msgs))` on
    /// violation.
    ///
    /// Only meaningful while no charged job is in flight — the service
    /// serializes fabric-touching jobs, so quiescence between jobs
    /// makes the deltas exact.
    #[allow(clippy::type_complexity)]
    pub fn check_partition(&self, global: &KindSnapshot) -> Result<(), ((u64, u64), (u64, u64))> {
        let mine = self.total_traffic();
        let (tb, gb) = (mine.total_bytes(), global.total_bytes());
        let (tm, gm) = (mine.total_messages(), global.total_messages());
        if tb == gb && tm == gm {
            Ok(())
        } else {
            Err(((tb, gb), (tm, gm)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(bytes: u64, msgs: u64) -> KindSnapshot {
        let mut s = KindSnapshot::default();
        s.bytes[0] = bytes;
        s.messages[0] = msgs;
        s
    }

    #[test]
    fn charges_accumulate_and_partition_holds() {
        let mut ledger = TenantLedger::new();
        ledger.record_submitted("alice");
        ledger.charge_traffic("alice", &snap(100, 3));
        ledger.charge_traffic("alice", &snap(50, 1));
        ledger.record_submitted("bob");
        ledger.charge_traffic("bob", &snap(200, 7));
        ledger.record_completed("alice", 4096);
        ledger.record_completed("alice", 1024);
        ledger.record_failed("bob");

        let a = ledger.account("alice").unwrap();
        assert_eq!(a.traffic.total_bytes(), 150);
        assert_eq!(a.completed, 2);
        assert_eq!(a.peak_job_bytes, 4096, "peak is a max, not a sum");
        assert_eq!(ledger.len(), 2);

        assert!(ledger.check_partition(&snap(350, 11)).is_ok());
        let err = ledger.check_partition(&snap(351, 11)).unwrap_err();
        assert_eq!(err.0, (350, 351));
    }

    #[test]
    fn empty_ledger_partitions_zero_exactly() {
        let ledger = TenantLedger::new();
        assert!(ledger.is_empty());
        assert!(ledger.check_partition(&KindSnapshot::default()).is_ok());
        assert!(ledger.check_partition(&snap(1, 0)).is_err());
    }

    #[test]
    fn accounts_iterate_sorted() {
        let mut ledger = TenantLedger::new();
        ledger.record_rejected("zed");
        ledger.record_rejected("ann");
        let names: Vec<&str> = ledger.accounts().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["ann", "zed"]);
    }
}
