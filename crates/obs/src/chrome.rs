//! Chrome trace-event export and re-parse.
//!
//! [`export_string`] serializes a [`Trace`] in the Chrome trace-event
//! JSON object format: one `"X"` (complete) event per span, one virtual
//! *process* per rank (`pid` = world rank, named via `"M"` metadata
//! events), timestamps/durations in microseconds. Load the file in
//! `chrome://tracing` or <https://ui.perfetto.dev> and each rank shows
//! up as its own swim lane with the phase spans nested inside it.
//!
//! Each span's `args` carry the phase, the optional tensor mode, and
//! its **exclusive** communication delta (total and per collective
//! kind), so the attribution survives the file format. A top-level
//! `"ratucker"` object embeds the session-global totals, which is what
//! lets a standalone validator ([`validate_parsed`], the `tracecheck`
//! binary, the CI smoke step) re-check the partition invariant — per-
//! span bytes summing to the global counters — from the file alone.

use crate::json::{write_escaped, Json, JsonError};
use crate::trace::{SpanEvent, Trace};
use ratucker_mpi::{CollectiveKind, KindSnapshot};
use std::fmt;
use std::path::Path;

/// Serializes `trace` as a Chrome trace-event JSON document.
pub fn export_string(trace: &Trace) -> String {
    let ranks = trace.ranks();
    let totals = trace.totals();
    let mut out = String::with_capacity(256 + 256 * trace.events.len());
    out.push_str("{\n\"traceEvents\": [\n");
    let mut first = true;
    for rank in 0..ranks {
        push_sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":{rank},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"rank {rank}\"}}}}"
        ));
    }
    for e in &trace.events {
        push_sep(&mut out, &mut first);
        push_span(&mut out, e);
    }
    out.push_str("\n],\n\"displayTimeUnit\": \"ms\",\n\"ratucker\": {");
    out.push_str(&format!(
        "\"ranks\": {ranks}, \"total_bytes\": {}, \"total_messages\": {}, \"evicted\": {}, \"kind_bytes\": {{",
        totals.total_bytes(),
        totals.total_messages(),
        trace.evicted
    ));
    let mut first_kind = true;
    for kind in CollectiveKind::ALL {
        if !first_kind {
            out.push_str(", ");
        }
        first_kind = false;
        out.push_str(&format!("\"{}\": {}", kind.name(), totals.bytes_of(kind)));
    }
    out.push_str("}}\n}\n");
    out
}

fn push_sep(out: &mut String, first: &mut bool) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
}

fn push_span(out: &mut String, e: &SpanEvent) {
    out.push_str("{\"ph\":\"X\",\"cat\":\"ratucker\",");
    out.push_str("\"name\":");
    write_escaped(out, e.phase);
    out.push_str(&format!(
        ",\"pid\":{},\"tid\":0,\"ts\":{},\"dur\":{},\"args\":{{",
        e.rank, e.t_start_us, e.dur_us
    ));
    out.push_str("\"phase\":");
    write_escaped(out, e.phase);
    if let Some(mode) = e.mode {
        out.push_str(&format!(",\"mode\":{mode}"));
    }
    out.push_str(&format!(
        ",\"depth\":{},\"self_dur_us\":{},\"self_bytes\":{},\"self_messages\":{},\"gross_bytes\":{},\"gross_messages\":{}",
        e.depth,
        e.self_dur_us,
        e.traffic.total_bytes(),
        e.traffic.total_messages(),
        e.gross_bytes,
        e.gross_messages
    ));
    if e.mem_hwm_bytes > 0 || e.mem_live_bytes > 0 {
        out.push_str(&format!(
            ",\"mem_hwm_bytes\":{},\"mem_live_bytes\":{}",
            e.mem_hwm_bytes, e.mem_live_bytes
        ));
    }
    for kind in CollectiveKind::ALL {
        let bytes = e.traffic.bytes_of(kind);
        let msgs = e.traffic.messages_of(kind);
        if bytes > 0 || msgs_nonzero(msgs) {
            out.push_str(&format!(
                ",\"bytes_{0}\":{1},\"messages_{0}\":{2}",
                kind.name(),
                bytes,
                msgs
            ));
        }
    }
    out.push_str("}}");
}

#[inline]
fn msgs_nonzero(m: u64) -> bool {
    m > 0
}

/// Writes the trace to `path` (creating parent directories).
pub fn write_trace(path: &Path, trace: &Trace) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, export_string(trace))
}

/// A span read back from a trace file.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedSpan {
    /// World rank (`pid`).
    pub rank: usize,
    /// Phase label.
    pub phase: String,
    /// Tensor mode tag, if present.
    pub mode: Option<usize>,
    /// Nesting depth.
    pub depth: usize,
    /// Start, µs.
    pub ts_us: u64,
    /// Inclusive duration, µs.
    pub dur_us: u64,
    /// Exclusive duration, µs.
    pub self_dur_us: u64,
    /// Exclusive per-kind traffic.
    pub traffic: KindSnapshot,
    /// Inclusive bytes.
    pub gross_bytes: u64,
    /// Memory-ledger high-water mark (bytes) when the span closed
    /// (0 when the producing run had no charged buffers).
    pub mem_hwm_bytes: u64,
    /// Live ledger-charged bytes when the span closed.
    pub mem_live_bytes: u64,
}

/// A trace file read back: spans plus the embedded session totals.
#[derive(Clone, Debug, Default)]
pub struct ParsedTrace {
    /// Every `"X"` span event.
    pub spans: Vec<ParsedSpan>,
    /// Rank count recorded in the `ratucker` footer.
    pub ranks: usize,
    /// Session-global exclusive byte total from the footer.
    pub total_bytes: u64,
    /// Session-global exclusive message total from the footer.
    pub total_messages: u64,
    /// Ring-buffer evictions during the session (nonzero voids the
    /// partition property).
    pub evicted: u64,
    /// Per-kind byte totals from the footer.
    pub kind_bytes: Vec<(CollectiveKind, u64)>,
}

/// Why a trace file failed to parse or validate.
#[derive(Debug)]
pub enum TraceFileError {
    /// Not valid JSON.
    Json(JsonError),
    /// Valid JSON, wrong shape.
    Structure(String),
    /// Parsed fine but an invariant does not hold.
    Invalid(String),
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Json(e) => write!(f, "trace file is not JSON: {e}"),
            TraceFileError::Structure(m) => write!(f, "trace file malformed: {m}"),
            TraceFileError::Invalid(m) => write!(f, "trace file invalid: {m}"),
        }
    }
}

impl std::error::Error for TraceFileError {}

impl From<JsonError> for TraceFileError {
    fn from(e: JsonError) -> Self {
        TraceFileError::Json(e)
    }
}

fn field_u64(obj: &Json, key: &str) -> Result<u64, TraceFileError> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| TraceFileError::Structure(format!("missing integer field {key:?}")))
}

/// Parses a Chrome trace-event document produced by [`export_string`].
pub fn parse(text: &str) -> Result<ParsedTrace, TraceFileError> {
    let doc = Json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| TraceFileError::Structure("missing traceEvents array".into()))?;
    let mut spans = Vec::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("");
        if ph != "X" {
            continue; // metadata events
        }
        let args = ev
            .get("args")
            .ok_or_else(|| TraceFileError::Structure("span without args".into()))?;
        let mut traffic = KindSnapshot::default();
        for kind in CollectiveKind::ALL {
            if let Some(b) = args.get(&format!("bytes_{}", kind.name())) {
                traffic.bytes[kind.index()] = b.as_u64().unwrap_or(0);
            }
            if let Some(m) = args.get(&format!("messages_{}", kind.name())) {
                traffic.messages[kind.index()] = m.as_u64().unwrap_or(0);
            }
        }
        spans.push(ParsedSpan {
            rank: field_u64(ev, "pid")? as usize,
            phase: args
                .get("phase")
                .and_then(Json::as_str)
                .ok_or_else(|| TraceFileError::Structure("span without phase tag".into()))?
                .to_string(),
            mode: args.get("mode").and_then(Json::as_u64).map(|m| m as usize),
            depth: field_u64(args, "depth")? as usize,
            ts_us: field_u64(ev, "ts")?,
            dur_us: field_u64(ev, "dur")?,
            self_dur_us: field_u64(args, "self_dur_us")?,
            traffic,
            gross_bytes: field_u64(args, "gross_bytes")?,
            // Optional: absent from spans recorded before the ledger
            // existed (and from runs that never charge a buffer).
            mem_hwm_bytes: args
                .get("mem_hwm_bytes")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            mem_live_bytes: args
                .get("mem_live_bytes")
                .and_then(Json::as_u64)
                .unwrap_or(0),
        });
    }
    let footer = doc
        .get("ratucker")
        .ok_or_else(|| TraceFileError::Structure("missing ratucker footer".into()))?;
    let mut kind_bytes = Vec::new();
    if let Some(Json::Obj(members)) = footer.get("kind_bytes") {
        for (name, v) in members {
            let kind = CollectiveKind::from_name(name).ok_or_else(|| {
                TraceFileError::Structure(format!("unknown collective kind {name:?}"))
            })?;
            kind_bytes.push((
                kind,
                v.as_u64().ok_or_else(|| {
                    TraceFileError::Structure(format!("kind_bytes[{name:?}] not an integer"))
                })?,
            ));
        }
    }
    Ok(ParsedTrace {
        spans,
        ranks: field_u64(footer, "ranks")? as usize,
        total_bytes: field_u64(footer, "total_bytes")?,
        total_messages: field_u64(footer, "total_messages")?,
        evicted: field_u64(footer, "evicted")?,
        kind_bytes,
    })
}

/// Validates a parsed trace file: at least one span per rank, no ring
/// evictions, per-span self bytes/messages summing to the embedded
/// global totals, and per-kind sums matching the footer taxonomy —
/// i.e. the on-disk form of the partition invariant.
pub fn validate_parsed(t: &ParsedTrace) -> Result<(), TraceFileError> {
    if t.ranks == 0 {
        return Err(TraceFileError::Invalid("trace contains no ranks".into()));
    }
    if t.evicted > 0 {
        return Err(TraceFileError::Invalid(format!(
            "{} spans were evicted from full ring buffers; byte partition is void",
            t.evicted
        )));
    }
    for rank in 0..t.ranks {
        if !t.spans.iter().any(|s| s.rank == rank) {
            return Err(TraceFileError::Invalid(format!(
                "rank {rank} recorded no spans"
            )));
        }
    }
    let mut sum = KindSnapshot::default();
    for s in &t.spans {
        sum.merge(&s.traffic);
    }
    if sum.total_bytes() != t.total_bytes {
        return Err(TraceFileError::Invalid(format!(
            "per-span self bytes sum to {} but footer records {}",
            sum.total_bytes(),
            t.total_bytes
        )));
    }
    if sum.total_messages() != t.total_messages {
        return Err(TraceFileError::Invalid(format!(
            "per-span self messages sum to {} but footer records {}",
            sum.total_messages(),
            t.total_messages
        )));
    }
    for (kind, bytes) in &t.kind_bytes {
        if sum.bytes_of(*kind) != *bytes {
            return Err(TraceFileError::Invalid(format!(
                "kind {} sums to {} in spans but {} in footer",
                kind.name(),
                sum.bytes_of(*kind),
                bytes
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{span, span_mode, TraceSession};
    use ratucker_mpi::{sum_op, Universe};

    #[test]
    fn export_parse_round_trip_preserves_everything() {
        let session = TraceSession::start();
        let u = Universe::new(3);
        u.run(|c| {
            let _root = span(&c, "run");
            {
                let _s = span_mode(&c, "TTM", 2);
                let _ = c.allreduce(vec![1.0f64; 8], sum_op);
            }
            let _g = span(&c, "Gram");
            let _ = c.allgatherv(vec![c.rank() as u64]);
        });
        let trace = session.finish();
        let text = export_string(&trace);
        let parsed = parse(&text).expect("round trip parse");
        assert_eq!(parsed.ranks, 3);
        assert_eq!(parsed.spans.len(), trace.events.len());
        assert_eq!(parsed.total_bytes, trace.totals().total_bytes());
        // Every original event is found with identical attribution.
        for e in &trace.events {
            let m = parsed
                .spans
                .iter()
                .find(|s| {
                    s.rank == e.rank
                        && s.phase == e.phase
                        && s.ts_us == e.t_start_us
                        && s.mode == e.mode
                })
                .unwrap_or_else(|| panic!("span {e:?} missing after round trip"));
            assert_eq!(m.traffic, e.traffic);
            assert_eq!(m.depth, e.depth);
            assert_eq!(m.dur_us, e.dur_us);
            assert_eq!(m.self_dur_us, e.self_dur_us);
            assert_eq!(m.gross_bytes, e.gross_bytes);
            assert_eq!(m.mem_hwm_bytes, e.mem_hwm_bytes);
            assert_eq!(m.mem_live_bytes, e.mem_live_bytes);
        }
        validate_parsed(&parsed).expect("file-level partition invariant");
        // And the file totals match what the universe actually moved.
        assert_eq!(parsed.total_bytes, u.traffic().snapshot().0);
    }

    #[test]
    fn validator_rejects_tampered_totals() {
        let session = TraceSession::start();
        Universe::launch(2, |c| {
            let _root = span(&c, "run");
            let _ = c.allreduce(vec![2.0f64; 4], sum_op);
        });
        let trace = session.finish();
        let text = export_string(&trace);
        let mut parsed = parse(&text).unwrap();
        parsed.total_bytes += 1;
        assert!(matches!(
            validate_parsed(&parsed),
            Err(TraceFileError::Invalid(_))
        ));
        // Missing rank detection.
        let mut parsed2 = parse(&text).unwrap();
        parsed2.spans.retain(|s| s.rank != 1);
        assert!(validate_parsed(&parsed2).is_err());
    }
}
