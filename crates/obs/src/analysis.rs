//! Cross-rank trace analysis: per-phase load imbalance and a
//! critical-path estimate.
//!
//! The input is a completed [`Trace`](crate::trace::Trace). Spans are
//! grouped by phase label; per phase the analysis reduces each rank's
//! **exclusive** (self) time and bytes, then reports:
//!
//! * **imbalance** = max-over-ranks / mean-over-ranks of self time —
//!   1.0 is perfectly balanced, `P` is one rank doing everything;
//! * **critical path** = Σ over phases of the *slowest* rank's self
//!   time — the bulk-synchronous lower bound on wall time if every
//!   phase ends with a barrier (the paper's collectives make each
//!   sweep phase effectively bulk-synchronous).

use crate::trace::{SpanEvent, Trace};
use ratucker_mpi::KindSnapshot;
use std::fmt;

/// Per-phase statistics over all ranks.
#[derive(Clone, Debug)]
pub struct PhaseStat {
    /// Phase label.
    pub phase: &'static str,
    /// Number of spans with this label (all ranks).
    pub spans: usize,
    /// Exclusive seconds per rank (index = world rank).
    pub self_secs: Vec<f64>,
    /// Exclusive bytes sent per rank (index = world rank).
    pub self_bytes: Vec<u64>,
    /// Exclusive per-kind traffic summed over ranks.
    pub traffic: KindSnapshot,
}

impl PhaseStat {
    /// Total exclusive seconds across ranks.
    pub fn total_secs(&self) -> f64 {
        self.self_secs.iter().sum()
    }

    /// Total exclusive bytes across ranks.
    pub fn total_bytes(&self) -> u64 {
        self.self_bytes.iter().sum()
    }

    /// Slowest rank's exclusive seconds.
    pub fn max_secs(&self) -> f64 {
        self.self_secs.iter().cloned().fold(0.0, f64::max)
    }

    /// Load imbalance: max/mean of per-rank exclusive seconds.
    /// 1.0 when perfectly balanced; `NaN`-free (returns 1.0 when the
    /// phase did no work at all).
    pub fn imbalance(&self) -> f64 {
        let n = self.self_secs.len();
        if n == 0 {
            return 1.0;
        }
        let mean = self.total_secs() / n as f64;
        if mean <= 0.0 {
            1.0
        } else {
            self.max_secs() / mean
        }
    }
}

/// A full per-phase breakdown of a trace.
#[derive(Clone, Debug)]
pub struct PhaseBreakdown {
    /// Number of ranks in the trace.
    pub ranks: usize,
    /// Phases in first-appearance order.
    pub phases: Vec<PhaseStat>,
}

impl PhaseBreakdown {
    /// Builds the breakdown from a trace.
    pub fn from_trace(trace: &Trace) -> PhaseBreakdown {
        PhaseBreakdown::from_events(&trace.events, trace.ranks())
    }

    /// Builds the breakdown from raw span events over `ranks` ranks.
    pub fn from_events(events: &[SpanEvent], ranks: usize) -> PhaseBreakdown {
        let mut phases: Vec<PhaseStat> = Vec::new();
        for e in events {
            if e.rank >= ranks {
                continue;
            }
            let stat = match phases.iter_mut().find(|s| s.phase == e.phase) {
                Some(s) => s,
                None => {
                    phases.push(PhaseStat {
                        phase: e.phase,
                        spans: 0,
                        self_secs: vec![0.0; ranks],
                        self_bytes: vec![0; ranks],
                        traffic: KindSnapshot::default(),
                    });
                    phases.last_mut().expect("just pushed")
                }
            };
            stat.spans += 1;
            stat.self_secs[e.rank] += e.self_dur_us as f64 * 1e-6;
            stat.self_bytes[e.rank] += e.traffic.total_bytes();
            stat.traffic.merge(&e.traffic);
        }
        PhaseBreakdown { ranks, phases }
    }

    /// Looks up a phase by label.
    pub fn phase(&self, label: &str) -> Option<&PhaseStat> {
        self.phases.iter().find(|s| s.phase == label)
    }

    /// Bulk-synchronous critical-path estimate: Σ over phases of the
    /// slowest rank's exclusive time.
    pub fn critical_path_secs(&self) -> f64 {
        self.phases.iter().map(|s| s.max_secs()).sum()
    }

    /// Critical-path estimate with comm/compute overlap credited: phases
    /// whose label is in `labels` (e.g. `["TTM", "SI"]` under
    /// `Overlap on`) contribute only `(1 − credit)` of their slowest-rank
    /// time, because a `credit` fraction of each is expected to hide
    /// behind the adjacent slab's local compute in the pipelined kernels
    /// (DESIGN.md §17). With `credit = (S − 1)/S` for an `S`-slab
    /// pipeline this matches `perfmodel`'s `words_with_overlap` term.
    /// `credit` is clamped to `[0, 1]`; unlisted phases are unchanged.
    pub fn critical_path_secs_overlapped(&self, labels: &[&str], credit: f64) -> f64 {
        let credit = credit.clamp(0.0, 1.0);
        self.phases
            .iter()
            .map(|s| {
                let keep = if labels.contains(&s.phase) {
                    1.0 - credit
                } else {
                    1.0
                };
                s.max_secs() * keep
            })
            .sum()
    }

    /// Mean per-rank total exclusive time (the "perfect balance" wall
    /// time for the same work).
    pub fn balanced_secs(&self) -> f64 {
        if self.ranks == 0 {
            return 0.0;
        }
        self.phases.iter().map(|s| s.total_secs()).sum::<f64>() / self.ranks as f64
    }
}

impl fmt::Display for PhaseBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<14} {:>7} {:>11} {:>11} {:>9} {:>12}",
            "phase", "spans", "max s", "mean s", "imbal", "bytes"
        )?;
        for s in &self.phases {
            let mean = if self.ranks == 0 {
                0.0
            } else {
                s.total_secs() / self.ranks as f64
            };
            writeln!(
                f,
                "{:<14} {:>7} {:>11.6} {:>11.6} {:>9.3} {:>12}",
                s.phase,
                s.spans,
                s.max_secs(),
                mean,
                s.imbalance(),
                s.total_bytes()
            )?;
        }
        write!(
            f,
            "critical path {:.6} s   balanced {:.6} s",
            self.critical_path_secs(),
            self.balanced_secs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(rank: usize, phase: &'static str, self_us: u64, bytes: u64) -> SpanEvent {
        let mut traffic = KindSnapshot::default();
        traffic.bytes[0] = bytes;
        traffic.messages[0] = u64::from(bytes > 0);
        SpanEvent {
            rank,
            phase,
            mode: None,
            depth: 0,
            t_start_us: 0,
            dur_us: self_us,
            self_dur_us: self_us,
            traffic,
            gross_bytes: bytes,
            gross_messages: u64::from(bytes > 0),
            mem_hwm_bytes: 0,
            mem_live_bytes: 0,
        }
    }

    #[test]
    fn imbalance_and_critical_path() {
        // Phase A: rank0 = 3s, rank1 = 1s → mean 2, max 3, imbalance 1.5.
        // Phase B: both 1s → imbalance 1.0.
        let events = vec![
            ev(0, "A", 3_000_000, 100),
            ev(1, "A", 1_000_000, 50),
            ev(0, "B", 1_000_000, 0),
            ev(1, "B", 1_000_000, 0),
        ];
        let b = PhaseBreakdown::from_events(&events, 2);
        let a = b.phase("A").unwrap();
        assert!((a.imbalance() - 1.5).abs() < 1e-12);
        assert_eq!(a.total_bytes(), 150);
        assert!((b.phase("B").unwrap().imbalance() - 1.0).abs() < 1e-12);
        // Critical path: 3 (A's max) + 1 (B's max) = 4 s.
        assert!((b.critical_path_secs() - 4.0).abs() < 1e-12);
        // Balanced: (4 + 2) / 2 = 3 s.
        assert!((b.balanced_secs() - 3.0).abs() < 1e-12);
        // Display renders without panicking and mentions both phases.
        let text = format!("{b}");
        assert!(text.contains("A") && text.contains("critical path"));
    }

    #[test]
    fn overlapped_critical_path_credits_listed_phases_only() {
        let events = vec![
            ev(0, "TTM", 2_000_000, 100),
            ev(1, "TTM", 1_000_000, 50),
            ev(0, "LLSV", 1_000_000, 0),
            ev(1, "LLSV", 1_000_000, 0),
        ];
        let b = PhaseBreakdown::from_events(&events, 2);
        // Blocking estimate: 2 (TTM max) + 1 (LLSV max) = 3 s.
        assert!((b.critical_path_secs() - 3.0).abs() < 1e-12);
        // 4-slab pipeline hides 3/4 of TTM: 2·(1/4) + 1 = 1.5 s.
        let overlapped = b.critical_path_secs_overlapped(&["TTM"], 0.75);
        assert!((overlapped - 1.5).abs() < 1e-12);
        // Zero credit degenerates to the blocking estimate; credit is
        // clamped so an out-of-range value cannot go negative.
        assert!((b.critical_path_secs_overlapped(&["TTM"], 0.0) - 3.0).abs() < 1e-12);
        assert!(b.critical_path_secs_overlapped(&["TTM", "LLSV"], 7.0) >= 0.0);
        // Unlisted labels are untouched.
        assert!((b.critical_path_secs_overlapped(&["SI"], 0.75) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_idle_phases_are_nan_free() {
        let b = PhaseBreakdown::from_events(&[], 0);
        assert_eq!(b.critical_path_secs(), 0.0);
        assert_eq!(b.balanced_secs(), 0.0);
        let idle = vec![ev(0, "idle", 0, 0)];
        let b = PhaseBreakdown::from_events(&idle, 1);
        assert_eq!(b.phase("idle").unwrap().imbalance(), 1.0);
    }
}
