//! Observability for the RA-Tucker stack.
//!
//! Three layers, each usable on its own:
//!
//! 1. **Span tracing** ([`trace`]): per-rank begin/end spans carrying a
//!    phase label, an optional tensor mode, and the communication the
//!    span performed (attributed *exclusively* — a parent's counters
//!    exclude its children). Tracing is off by default and costs a
//!    single relaxed atomic load per span site when disabled.
//! 2. **Chrome trace export** ([`chrome`]): merges all ranks' spans
//!    into one trace-event JSON file loadable in `chrome://tracing` or
//!    Perfetto, one "process" per rank — plus a parser and validator
//!    for the same files so CI can smoke-check emitted traces.
//! 3. **Analysis** ([`analysis`], [`validate`]): per-phase load
//!    imbalance and critical-path estimates across ranks, and a
//!    perf-model validation report comparing measured per-phase
//!    communication volume against [`ratucker_perfmodel`] predictions.
//!
//! Communication attribution builds on [`ratucker_mpi`]'s
//! per-collective-kind traffic counters ([`ratucker_mpi::KindSnapshot`]);
//! the sum of all spans' exclusive counters on a rank equals that
//! rank's source-side totals, so per-phase bytes partition the global
//! [`ratucker_mpi::TrafficStats`] exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod chrome;
pub mod json;
pub mod straggler;
pub mod tenant;
pub mod trace;
pub mod validate;

pub use analysis::{PhaseBreakdown, PhaseStat};
pub use chrome::{
    export_string, parse, validate_parsed, write_trace, ParsedSpan, ParsedTrace, TraceFileError,
};
pub use straggler::{scores_from_breakdown, StragglerDetector, StragglerPolicy};
pub use tenant::{TenantAccount, TenantLedger};
pub use trace::{
    enabled, flush_current_thread, span, span_mode, Span, SpanEvent, Trace, TraceSession,
    DEFAULT_RING_CAPACITY,
};
pub use validate::{
    validate_against_model, PerfDeviation, PhaseValidation, ValidationConfig, ValidationReport,
};
