//! A minimal, dependency-free JSON reader/writer.
//!
//! The build environment is offline (no serde), and the trace tooling
//! needs both to *emit* Chrome trace-event files and to *re-parse* them
//! (the round-trip test and the CI trace-smoke validator). This module
//! covers exactly the JSON subset those files use: objects, arrays,
//! strings with standard escapes, booleans, null, and numbers — with
//! unsigned integers kept exact in `u64` (byte counters exceed the
//! 2⁵³ float-exact range in principle) and everything else as `f64`.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact.
    Int(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, with insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exact `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

/// A parse failure: byte offset plus a static description.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &'static str, msg: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self
                .literal("true", "expected 'true'")
                .map(|_| Json::Bool(true)),
            Some(b'f') => self
                .literal("false", "expected 'false'")
                .map(|_| Json::Bool(false)),
            Some(b'n') => self.literal("null", "expected 'null'").map(|_| Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("non-UTF8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (copy raw bytes).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_int = self.pos > start && self.bytes[start] != b'-';
        if self.peek() == Some(b'.') {
            is_int = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_int = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_int {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let doc = r#"{"a": [1, 2.5, -3, true, false, null], "b": {"c": "x\ny"}, "n": 18446744073709551615}"#;
        let v = Json::parse(doc).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0], Json::Int(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_f64(), Some(-3.0));
        assert_eq!(a[3], Json::Bool(true));
        assert_eq!(a[5], Json::Null);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        // u64::MAX survives exactly (f64 would round it).
        assert_eq!(v.get("n").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn escape_round_trip() {
        let nasty = "quote\" back\\slash \n tab\t unicode \u{1F600} ctrl\u{1}";
        let mut doc = String::new();
        write_escaped(&mut doc, nasty);
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.as_str(), Some(nasty));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"x", "{\"a\" 1}", "[1] extra", "nul", ""] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        // \u escapes and raw multibyte characters both decode.
        let v = Json::parse("\"\\u0041\\u00e9 é\"").unwrap();
        assert_eq!(v.as_str(), Some("Aé é"));
    }
}
