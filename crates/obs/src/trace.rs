//! The per-rank span tracer.
//!
//! A [`Span`] is an RAII guard marking one phase of work on one rank:
//! it records wall time (inclusive and exclusive of child spans) and,
//! through a [`ratucker_mpi::TrafficScope`], the communication the rank
//! performed while the span was open, per collective kind. Spans nest;
//! a child's traffic and time are carved out of its parent's *self*
//! totals, so summing the self-deltas of all spans partitions the rank's
//! traffic exactly — no byte is double-counted and (under a root span
//! covering the whole rank closure) none is orphaned.
//!
//! Tracing is **off by default** and near-zero-cost when off:
//! [`span`] performs one relaxed atomic load and returns an inert guard —
//! no allocation, no clock read, no counter snapshot. Turning it on is
//! scoped by a [`TraceSession`], which serializes concurrent sessions
//! process-wide (important under `cargo test`'s threaded runner).
//!
//! Completed spans land in a bounded per-thread ring buffer (oldest
//! evicted first, evictions counted); buffers flush to a global
//! collector when the rank thread exits — [`crate::TraceSession`]
//! relies on `Universe::run` joining its scoped rank threads before
//! returning, so by the time [`TraceSession::finish`] runs every rank's
//! spans are in the collector.

use ratucker_mpi::{Comm, KindSnapshot, TrafficStats};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Default per-thread ring-buffer capacity (spans retained per rank).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);
static EVICTED: AtomicU64 = AtomicU64::new(0);
static COLLECTOR: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());
static SESSION: Mutex<()> = Mutex::new(());
static CLOCK: OnceLock<Instant> = OnceLock::new();

/// Is tracing currently enabled? One relaxed atomic load — this is the
/// whole cost of a disabled [`span`] call site.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Microseconds since the process-wide trace clock origin.
fn now_us() -> u64 {
    CLOCK
        .get_or_init(Instant::now)
        .elapsed()
        .as_micros()
        .min(u128::from(u64::MAX)) as u64
}

/// One completed span: a phase of work on one rank, with exclusive
/// (self) and inclusive (gross) time and traffic.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// World rank the span ran on.
    pub rank: usize,
    /// Phase label (static: `"TTM"`, `"Gram"`, `"sweep"`, …).
    pub phase: &'static str,
    /// Tensor mode the phase worked on, when meaningful.
    pub mode: Option<usize>,
    /// Nesting depth (0 = top-level span on its rank).
    pub depth: usize,
    /// Start time, µs since the trace clock origin.
    pub t_start_us: u64,
    /// Inclusive duration, µs.
    pub dur_us: u64,
    /// Exclusive duration (child spans subtracted), µs.
    pub self_dur_us: u64,
    /// Exclusive per-kind traffic **sent by this rank** inside the span
    /// (child spans subtracted). Summing this field over all spans of a
    /// trace partitions the ranks' send totals.
    pub traffic: KindSnapshot,
    /// Inclusive bytes sent (children included).
    pub gross_bytes: u64,
    /// Inclusive messages sent (children included).
    pub gross_messages: u64,
    /// The rank's memory-ledger high-water mark (bytes) when the span
    /// closed — cumulative over the run, not span-local.
    pub mem_hwm_bytes: u64,
    /// The rank's live ledger-charged bytes when the span closed.
    pub mem_live_bytes: u64,
}

/// Per-thread accumulator a parent span keeps for its children's
/// inclusive totals, so it can compute its own exclusive numbers.
#[derive(Default)]
struct ChildAcc {
    traffic: KindSnapshot,
    dur_us: u64,
}

#[derive(Default)]
struct ThreadState {
    stack: Vec<ChildAcc>,
    ring: std::collections::VecDeque<SpanEvent>,
}

impl Drop for ThreadState {
    fn drop(&mut self) {
        flush_state(self);
    }
}

fn flush_state(state: &mut ThreadState) {
    if state.ring.is_empty() {
        return;
    }
    let mut collector = COLLECTOR.lock().unwrap_or_else(|e| e.into_inner());
    collector.extend(state.ring.drain(..));
}

thread_local! {
    static THREAD: RefCell<ThreadState> = RefCell::new(ThreadState::default());
}

/// Flushes the calling thread's span buffer into the global collector.
/// Rank threads flush automatically on exit; call this only for spans
/// recorded on a long-lived thread (e.g. the main thread).
pub fn flush_current_thread() {
    THREAD.with(|t| flush_state(&mut t.borrow_mut()));
}

/// RAII span guard. Created by [`span`] / [`span_mode`]; the span closes
/// (and records its event) when the guard drops. Inert — a single bool —
/// when tracing is disabled.
pub struct Span<'a> {
    inner: Option<SpanInner<'a>>,
}

struct SpanInner<'a> {
    stats: &'a TrafficStats,
    rank: usize,
    phase: &'static str,
    mode: Option<usize>,
    t_start_us: u64,
    start: KindSnapshot,
}

/// Opens a span for `phase` on the calling rank (identified through
/// `comm`'s world-rank mapping). Near-zero-cost no-op when tracing is
/// disabled.
#[inline]
pub fn span<'a>(comm: &'a Comm, phase: &'static str) -> Span<'a> {
    if !enabled() {
        return Span { inner: None };
    }
    span_armed(comm, phase, None)
}

/// [`span`] with a tensor-mode tag.
#[inline]
pub fn span_mode<'a>(comm: &'a Comm, phase: &'static str, mode: usize) -> Span<'a> {
    if !enabled() {
        return Span { inner: None };
    }
    span_armed(comm, phase, Some(mode))
}

#[cold]
fn span_armed<'a>(comm: &'a Comm, phase: &'static str, mode: Option<usize>) -> Span<'a> {
    let rank = comm.world_rank_of(comm.rank());
    let stats = comm.traffic();
    let start = stats.kind_snapshot_for(rank);
    THREAD.with(|t| t.borrow_mut().stack.push(ChildAcc::default()));
    Span {
        inner: Some(SpanInner {
            stats,
            rank,
            phase,
            mode,
            t_start_us: now_us(),
            start,
        }),
    }
}

impl Span<'_> {
    /// Is this guard actually recording (tracing was enabled when it
    /// opened)?
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let end = inner.stats.kind_snapshot_for(inner.rank);
        let gross = end.since(&inner.start);
        let dur_us = now_us().saturating_sub(inner.t_start_us);
        let mem = ratucker_mem::stats();
        THREAD.with(|t| {
            let mut state = t.borrow_mut();
            let children = state.stack.pop().unwrap_or_default();
            let event = SpanEvent {
                rank: inner.rank,
                phase: inner.phase,
                mode: inner.mode,
                depth: state.stack.len(),
                t_start_us: inner.t_start_us,
                dur_us,
                self_dur_us: dur_us.saturating_sub(children.dur_us),
                traffic: gross.saturating_sub(&children.traffic),
                gross_bytes: gross.total_bytes(),
                gross_messages: gross.total_messages(),
                mem_hwm_bytes: mem.hwm,
                mem_live_bytes: mem.live,
            };
            if let Some(parent) = state.stack.last_mut() {
                parent.traffic.merge(&gross);
                parent.dur_us += dur_us;
            }
            let cap = RING_CAPACITY.load(Ordering::Relaxed).max(1);
            if state.ring.len() >= cap {
                state.ring.pop_front();
                EVICTED.fetch_add(1, Ordering::Relaxed);
            }
            state.ring.push_back(event);
        });
    }
}

/// A completed trace: every span collected during one [`TraceSession`].
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// The collected spans (per-rank order preserved; ranks interleaved).
    pub events: Vec<SpanEvent>,
    /// Spans evicted from full ring buffers (0 unless a rank outgrew
    /// the ring capacity — evictions break the partition property).
    pub evicted: u64,
}

impl Trace {
    /// Number of ranks that recorded at least one span (max rank + 1).
    pub fn ranks(&self) -> usize {
        self.events.iter().map(|e| e.rank + 1).max().unwrap_or(0)
    }

    /// Sum of per-span exclusive traffic over all events — under root
    /// spans this equals the traffic the universe moved during the
    /// session.
    pub fn totals(&self) -> KindSnapshot {
        let mut acc = KindSnapshot::default();
        for e in &self.events {
            acc.merge(&e.traffic);
        }
        acc
    }

    /// The spans recorded by `rank`, in completion order.
    pub fn events_of_rank(&self, rank: usize) -> impl Iterator<Item = &SpanEvent> {
        self.events.iter().filter(move |e| e.rank == rank)
    }
}

/// Scoped ownership of the (process-global) tracer.
///
/// `start()` clears the collector and enables tracing; [`finish`]
/// disables it and returns the [`Trace`]. Sessions are mutually
/// exclusive: a second `start()` blocks until the first session is
/// dropped, so parallel tests cannot interleave their spans.
pub struct TraceSession {
    _lock: MutexGuard<'static, ()>,
}

impl TraceSession {
    /// Begins a session with the default ring capacity.
    pub fn start() -> TraceSession {
        TraceSession::start_with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// Begins a session retaining at most `capacity` spans per rank
    /// thread (oldest evicted first).
    pub fn start_with_capacity(capacity: usize) -> TraceSession {
        let lock = SESSION.lock().unwrap_or_else(|e| e.into_inner());
        COLLECTOR.lock().unwrap_or_else(|e| e.into_inner()).clear();
        EVICTED.store(0, Ordering::Relaxed);
        RING_CAPACITY.store(capacity.max(1), Ordering::Relaxed);
        let _ = CLOCK.get_or_init(Instant::now);
        ENABLED.store(true, Ordering::SeqCst);
        TraceSession { _lock: lock }
    }

    /// Ends the session and returns everything it recorded. Rank
    /// threads must have exited (e.g. `Universe::run` returned) — their
    /// buffers flush on thread exit; the calling thread is flushed
    /// explicitly.
    pub fn finish(self) -> Trace {
        ENABLED.store(false, Ordering::SeqCst);
        flush_current_thread();
        let events = std::mem::take(&mut *COLLECTOR.lock().unwrap_or_else(|e| e.into_inner()));
        Trace {
            events,
            evicted: EVICTED.swap(0, Ordering::Relaxed),
        }
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        // finish() already cleared the flag; this covers early drops.
        ENABLED.store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratucker_mpi::{sum_op, CollectiveKind, Universe};

    #[test]
    fn disabled_spans_are_inert() {
        // Hold the session lock (without enabling) so concurrent tests
        // cannot flip the global flag under us.
        let _guard = SESSION.lock().unwrap_or_else(|e| e.into_inner());
        ENABLED.store(false, Ordering::SeqCst);
        COLLECTOR.lock().unwrap_or_else(|e| e.into_inner()).clear();
        Universe::launch(2, |c| {
            let s = span(&c, "noop");
            assert!(!s.is_active());
            let _ = c.allreduce(vec![1.0f64; 4], sum_op);
        });
        flush_current_thread();
        assert!(
            COLLECTOR
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty(),
            "disabled spans must record nothing"
        );
    }

    #[test]
    fn spans_attribute_traffic_and_nest_exclusively() {
        let session = TraceSession::start();
        let u = Universe::new(4);
        u.run(|c| {
            let _root = span(&c, "run");
            {
                let _s = span_mode(&c, "TTM", 1);
                let _ = c.allreduce(vec![1.0f64; 16], sum_op);
            }
            {
                let _outer = span(&c, "outer");
                let _ = c.allgatherv(vec![c.rank() as u64; 2]);
                {
                    let _inner = span(&c, "inner");
                    let _ = c.allreduce(vec![0.5f64; 8], sum_op);
                }
            }
        });
        let trace = session.finish();
        assert_eq!(trace.ranks(), 4);
        assert_eq!(trace.evicted, 0);
        // 4 spans per rank.
        for r in 0..4 {
            assert_eq!(trace.events_of_rank(r).count(), 4, "rank {r}");
        }
        // The partition property: summed self traffic == universe totals.
        let totals = trace.totals();
        let global = u.traffic().kind_totals();
        assert_eq!(totals, global);
        // The inner span's allreduce traffic is excluded from "outer".
        let outer: Vec<_> = trace.events.iter().filter(|e| e.phase == "outer").collect();
        for e in &outer {
            assert_eq!(e.traffic.bytes_of(CollectiveKind::Allreduce), 0);
            assert_eq!(e.depth, 1);
        }
        let ttm: Vec<_> = trace.events.iter().filter(|e| e.phase == "TTM").collect();
        assert_eq!(ttm.len(), 4);
        for e in &ttm {
            assert_eq!(e.mode, Some(1));
            assert_eq!(e.traffic.bytes_of(CollectiveKind::Allgatherv), 0);
        }
        // Root spans carry no exclusive allreduce traffic either
        // (everything happened inside children) but their gross includes
        // all of it.
        for e in trace.events.iter().filter(|e| e.phase == "run") {
            assert_eq!(e.depth, 0);
            assert_eq!(e.traffic.total_bytes(), 0);
            assert!(e.gross_bytes > 0 || e.rank == 0);
        }
    }

    #[test]
    fn ring_capacity_evicts_oldest() {
        let session = TraceSession::start_with_capacity(2);
        Universe::launch(1, |c| {
            for i in 0..5 {
                let _s = span_mode(&c, "tick", i);
            }
        });
        let trace = session.finish();
        assert_eq!(trace.events.len(), 2, "ring kept the newest two");
        assert_eq!(trace.evicted, 3);
        let modes: Vec<_> = trace.events.iter().map(|e| e.mode.unwrap()).collect();
        assert_eq!(modes, vec![3, 4]);
    }
}
