//! Property-based tests of the factorization invariants.

use proptest::prelude::*;
use ratucker_linalg::{qr, qrcp, rank_for_error, svd_jacobi, sym_evd};
use ratucker_tensor::matrix::Matrix;

fn arb_matrix(max_dim: usize) -> impl Strategy<Value = Matrix<f64>> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(m, n)| {
        prop::collection::vec(-1.0f64..1.0, m * n)
            .prop_map(move |data| Matrix::from_vec(m, n, data))
    })
}

fn arb_symmetric(max_dim: usize) -> impl Strategy<Value = Matrix<f64>> {
    (1..=max_dim).prop_flat_map(|n| {
        prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
            let b = Matrix::from_vec(n, n, data);
            let mut s = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    s[(i, j)] = 0.5 * (b[(i, j)] + b[(j, i)]);
                }
            }
            s
        })
    })
}

/// A symmetric matrix with a *near-degenerate* spectrum: eigenvalues come
/// in pairs separated by ~1e-10 (ill-conditioned eigenvectors, the regime
/// where naive EVD implementations lose orthogonality). Built as Q Λ Qᵀ
/// with Q drawn from the QR factorization of a random matrix, so the true
/// spectrum is known by construction.
fn arb_clustered_symmetric(max_pairs: usize) -> impl Strategy<Value = (Matrix<f64>, Vec<f64>)> {
    (1..=max_pairs).prop_flat_map(|pairs| {
        let n = 2 * pairs;
        prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
            let q = qr(&Matrix::from_vec(n, n, data)).q;
            // λ = [p, p+δ, p−1, p−1+δ, …]: well-separated clusters of two.
            let delta = 1e-10;
            let lambda: Vec<f64> = (0..n)
                .map(|k| (pairs - k / 2) as f64 + if k % 2 == 1 { delta } else { 0.0 })
                .collect();
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    let mut acc = 0.0;
                    for k in 0..n {
                        acc += q[(i, k)] * lambda[k] * q[(j, k)];
                    }
                    a[(i, j)] = acc;
                }
            }
            (a, lambda)
        })
    })
}

/// `‖A v_k − λ_k v_k‖∞` for eigenpair `k`.
fn evd_residual(a: &Matrix<f64>, e: &ratucker_linalg::SymEvd<f64>, k: usize) -> f64 {
    let n = a.rows();
    (0..n)
        .map(|i| {
            let av: f64 = (0..n).map(|j| a[(i, j)] * e.vectors[(j, k)]).sum();
            (av - e.values[k] * e.vectors[(i, k)]).abs()
        })
        .fold(0.0, f64::max)
}

fn reconstruct_qr(f: &ratucker_linalg::QrFactors<f64>, n: usize) -> Matrix<f64> {
    let prod = f.q.matmul(&f.r);
    let mut a = Matrix::zeros(f.q.rows(), n);
    for j in 0..n {
        a.col_mut(f.perm[j]).copy_from_slice(prod.col(j));
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn evd_reconstructs_symmetric(a in arb_symmetric(10)) {
        let e = sym_evd(&a);
        let n = a.rows();
        prop_assert!(e.vectors.orthonormality_defect() < 1e-9);
        // A = V Λ Vᵀ entrywise.
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += e.vectors[(i, k)] * e.values[k] * e.vectors[(j, k)];
                }
                prop_assert!((acc - a[(i, j)]).abs() < 1e-8, "({i},{j}): {acc} vs {}", a[(i, j)]);
            }
        }
        // Eigenvalue sum = trace.
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn qr_reconstructs_and_is_orthonormal(a in arb_matrix(10)) {
        let f = qr(&a);
        prop_assert!(f.q.orthonormality_defect() < 1e-9);
        prop_assert!(reconstruct_qr(&f, a.cols()).max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn qrcp_reconstructs_with_ordered_diagonal(a in arb_matrix(10)) {
        let f = qrcp(&a);
        prop_assert!(f.q.orthonormality_defect() < 1e-9);
        prop_assert!(reconstruct_qr(&f, a.cols()).max_abs_diff(&a) < 1e-9);
        let k = f.r.rows();
        for j in 1..k.min(f.r.cols()) {
            prop_assert!(
                f.r[(j, j)].abs() <= f.r[(j - 1, j - 1)].abs() + 1e-9,
                "diagonal not non-increasing at {j}"
            );
        }
        // perm is a permutation.
        let mut p = f.perm.clone();
        p.sort_unstable();
        prop_assert_eq!(p, (0..a.cols()).collect::<Vec<_>>());
    }

    #[test]
    fn svd_reconstructs_and_matches_gram_spectrum(a in arb_matrix(8)) {
        let s = svd_jacobi(&a);
        // Reconstruction.
        let k = s.sigma.len();
        let mut us = s.u.clone();
        for j in 0..k {
            let sv = s.sigma[j];
            for x in us.col_mut(j) {
                *x *= sv;
            }
        }
        let rec = us.matmul(&s.v.transpose());
        prop_assert!(rec.max_abs_diff(&a) < 1e-8);
        // σ² = eigenvalues of A Aᵀ (descending, padded with zeros).
        let gram = a.matmul(&a.transpose());
        let e = sym_evd(&gram);
        for j in 0..a.rows().min(k) {
            prop_assert!((s.sigma[j] * s.sigma[j] - e.values[j]).abs() < 1e-7);
        }
    }

    #[test]
    fn evd_residuals_are_small(a in arb_symmetric(10)) {
        // ‖A v − λ v‖ is the backward-stability measure: it stays tight
        // even when individual eigenvectors are ill-conditioned.
        let e = sym_evd(&a);
        for k in 0..a.rows() {
            let r = evd_residual(&a, &e, k);
            prop_assert!(
                r < 1e-9 * (1.0 + e.values[k].abs()),
                "eigenpair {k}: residual {r}, λ = {}",
                e.values[k]
            );
        }
    }

    #[test]
    fn evd_handles_near_degenerate_spectra((a, lambda) in arb_clustered_symmetric(4)) {
        let e = sym_evd(&a);
        let n = a.rows();
        // Eigenvalues recovered to high accuracy despite 1e-10 gaps…
        let mut want = lambda.clone();
        want.sort_by(|x, y| y.partial_cmp(x).unwrap());
        for (k, (got, w)) in e.values.iter().zip(&want).enumerate() {
            prop_assert!((got - w).abs() < 1e-8, "λ_{k}: got {got}, want {w}");
        }
        // …the basis stays orthonormal, and residuals stay small even
        // though vectors *within* a cluster are barely determined.
        prop_assert!(e.vectors.orthonormality_defect() < 1e-9);
        for k in 0..n {
            let r = evd_residual(&a, &e, k);
            prop_assert!(r < 1e-8 * (1.0 + e.values[k].abs()), "eigenpair {k}: residual {r}");
        }
    }

    #[test]
    fn qrcp_first_pivot_has_maximal_column_norm(a in arb_matrix(10)) {
        // Greedy column pivoting must pick the largest-norm column first.
        let f = qrcp(&a);
        let norm = |j: usize| a.col(j).iter().map(|x| x * x).sum::<f64>();
        let picked = norm(f.perm[0]);
        for j in 0..a.cols() {
            prop_assert!(picked >= norm(j) - 1e-12, "column {j} beats the first pivot");
        }
    }

    #[test]
    fn rank_for_error_is_minimal_and_feasible(
        evs in prop::collection::vec(0.0f64..10.0, 1..10),
        budget in 0.0f64..20.0,
    ) {
        let mut sorted = evs.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let r = rank_for_error(&sorted, budget);
        prop_assert!(r >= 1 && r <= sorted.len());
        // Feasible: discarded mass ≤ budget (or r = len and nothing discarded).
        let tail: f64 = sorted[r..].iter().sum();
        prop_assert!(tail <= budget + 1e-12);
        // Minimal: discarding one more would overshoot (unless r == 1).
        if r > 1 {
            let tail_more: f64 = sorted[r - 1..].iter().sum();
            prop_assert!(tail_more > budget);
        }
    }
}
