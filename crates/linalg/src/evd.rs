//! Symmetric eigenvalue decomposition.
//!
//! Classic two-stage dense symmetric eigensolver: Householder
//! tridiagonalization (EISPACK `tred2`) followed by the implicit-shift QL
//! iteration with eigenvector accumulation (`tql2`). This is the
//! "sequential EVD" of TuckerMPI's LLSV whose `O(n³)` cost the paper
//! identifies as STHOSVD's scaling bottleneck (§2.1, §4.1) — we keep it
//! deliberately sequential for the same reason TuckerMPI does, so the
//! bottleneck is reproduced rather than papered over.

use ratucker_tensor::flops;
use ratucker_tensor::matrix::Matrix;
use ratucker_tensor::scalar::Scalar;

/// Result of a symmetric EVD, eigenpairs sorted by descending eigenvalue.
#[derive(Clone, Debug)]
pub struct SymEvd<T: Scalar> {
    /// Eigenvalues, largest first.
    pub values: Vec<T>,
    /// Orthonormal eigenvectors; column `i` pairs with `values[i]`.
    pub vectors: Matrix<T>,
}

/// Typed failure of the symmetric eigensolver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvdError {
    /// The input matrix contains NaN or ±∞ entries (e.g. a corrupted
    /// collective payload) — iterating on it would never converge.
    NonFinite,
    /// The QL iteration exhausted its sweep budget on one eigenvalue.
    NoConvergence {
        /// Index of the eigenvalue being isolated when the budget ran out.
        eigenvalue: usize,
        /// Sweeps attempted.
        iters: usize,
    },
}

impl std::fmt::Display for EvdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvdError::NonFinite => {
                write!(f, "sym_evd: input matrix contains non-finite entries")
            }
            EvdError::NoConvergence { eigenvalue, iters } => write!(
                f,
                "tql2: no convergence for eigenvalue {eigenvalue} after {iters} iterations"
            ),
        }
    }
}

impl std::error::Error for EvdError {}

/// Computes the full eigendecomposition of a symmetric matrix.
///
/// Only the lower triangle of `a` is read. Panics if `a` is not square or
/// on an [`EvdError`] (non-finite input, QL non-convergence); see
/// [`try_sym_evd`] for the fallible variant.
pub fn sym_evd<T: Scalar>(a: &Matrix<T>) -> SymEvd<T> {
    try_sym_evd(a).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`sym_evd`]: non-finite input and QL
/// non-convergence surface as a typed [`EvdError`] instead of a panic
/// (callers such as `llsv` use this to fall back to the Jacobi SVD).
///
/// # Panics
/// Still panics if `a` is not square — that is a shape bug, not a
/// numerical fault.
pub fn try_sym_evd<T: Scalar>(a: &Matrix<T>) -> Result<SymEvd<T>, EvdError> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "sym_evd requires a square matrix");
    if n == 0 {
        return Ok(SymEvd {
            values: Vec::new(),
            vectors: Matrix::zeros(0, 0),
        });
    }
    // Screen for NaN/±∞ up front: QL on garbage spins through its whole
    // sweep budget before failing, and the error would be less precise.
    if a.as_slice().iter().any(|x| !x.is_finite_s()) {
        return Err(EvdError::NonFinite);
    }
    // Symmetrize defensively (distributed reductions can leave the two
    // triangles differing in the last ulp, which QL then amplifies).
    let mut z = Matrix::from_fn(n, n, |i, j| {
        let half = T::from_f64(0.5);
        (a[(i, j)] + a[(j, i)]) * half
    });
    let mut d = vec![T::ZERO; n];
    let mut e = vec![T::ZERO; n];
    tred2(&mut z, &mut d, &mut e);
    tql2(&mut z, &mut d, &mut e)?;
    // Leading-order cost of tridiagonalization + accumulation ≈ (4/3 + 3)n³;
    // we log 4n³ as a round leading-order figure.
    flops::add(4 * (n as u64).pow(3));

    // Sort eigenpairs descending.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).unwrap_or(std::cmp::Ordering::Equal));
    let values: Vec<T> = order.iter().map(|&i| d[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        vectors.col_mut(new_col).copy_from_slice(z.col(old_col));
    }
    Ok(SymEvd { values, vectors })
}

/// Householder reduction of a real symmetric matrix to tridiagonal form,
/// accumulating the orthogonal transformation in `z` (EISPACK tred2).
/// On exit `d` holds the diagonal, `e[1..]` the subdiagonal.
fn tred2<T: Scalar>(z: &mut Matrix<T>, d: &mut [T], e: &mut [T]) {
    let n = z.rows();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = T::ZERO;
        if l > 0 {
            let mut scale = T::ZERO;
            for k in 0..=l {
                scale += z[(i, k)].abs();
            }
            if scale == T::ZERO {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    let v = z[(i, k)] / scale;
                    z[(i, k)] = v;
                    h += v * v;
                }
                let f = z[(i, l)];
                let g = if f >= T::ZERO { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                let mut f_acc = T::ZERO;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g_acc = T::ZERO;
                    for k in 0..=j {
                        g_acc += z[(j, k)] * z[(i, k)];
                    }
                    for k in j + 1..=l {
                        g_acc += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g_acc / h;
                    f_acc += e[j] * z[(i, j)];
                }
                let hh = f_acc / (h + h);
                for j in 0..=l {
                    let f = z[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let upd = f * e[k] + g * z[(i, k)];
                        z[(j, k)] -= upd;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = T::ZERO;
    e[0] = T::ZERO;
    for i in 0..n {
        if d[i] != T::ZERO {
            for j in 0..i {
                let mut g = T::ZERO;
                for k in 0..i {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..i {
                    let upd = g * z[(k, i)];
                    z[(k, j)] -= upd;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = T::ONE;
        for j in 0..i {
            z[(j, i)] = T::ZERO;
            z[(i, j)] = T::ZERO;
        }
    }
}

/// Implicit-shift QL iteration on a symmetric tridiagonal matrix with
/// eigenvector accumulation (EISPACK tql2).
fn tql2<T: Scalar>(z: &mut Matrix<T>, d: &mut [T], e: &mut [T]) -> Result<(), EvdError> {
    let n = z.rows();
    if n == 1 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = T::ZERO;
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Look for a negligible subdiagonal element to split the matrix.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= T::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return Err(EvdError::NoConvergence {
                    eigenvalue: l,
                    iters: iter - 1,
                });
            }
            // Form the implicit Wilkinson shift.
            let two = T::from_f64(2.0);
            let mut g = (d[l + 1] - d[l]) / (two * e[l]);
            let mut r = g.hypot(T::ONE);
            g = d[m] - d[l] + e[l] / (g + r.abs().copysign_s(g));
            let mut s = T::ONE;
            let mut c = T::ONE;
            let mut p = T::ZERO;
            let mut i = m;
            let mut underflow_restart = false;
            while i > l {
                i -= 1;
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == T::ZERO {
                    d[i + 1] -= p;
                    e[m] = T::ZERO;
                    underflow_restart = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + two * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Rotate eigenvector columns i and i+1.
                let (col_i, col_i1) = z.cols_mut_pair(i, i + 1);
                for k in 0..n {
                    f = col_i1[k];
                    col_i1[k] = s * col_i[k] + c * f;
                    col_i[k] = c * col_i[k] - s * f;
                }
            }
            if underflow_restart {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = T::ZERO;
        }
    }
    Ok(())
}

/// Smallest rank `r` such that the *discarded* eigenvalue mass
/// `Σ_{i≥r} λ_i` is at most `threshold_sq` (eigenvalues descending;
/// negative round-off eigenvalues are clamped to zero). This is the
/// error-specified truncation rule of Alg. 1 line 4, where
/// `threshold_sq = ε²‖X‖²/d`.
pub fn rank_for_error<T: Scalar>(eigenvalues: &[T], threshold_sq: f64) -> usize {
    let n = eigenvalues.len();
    // Trailing cumulative sums in f64.
    let mut tail = 0.0f64;
    let mut rank = n;
    for r in (0..n).rev() {
        tail += eigenvalues[r].to_f64().max(0.0);
        if tail > threshold_sq {
            break;
        }
        rank = r;
    }
    rank.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ratucker_tensor::random::random_orthonormal;

    fn random_symmetric(n: usize, seed: u64) -> Matrix<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let b: Matrix<f64> = ratucker_tensor::random::normal_matrix(n, n, &mut rng);
        let mut s = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                s[(i, j)] = 0.5 * (b[(i, j)] + b[(j, i)]);
            }
        }
        s
    }

    fn check_evd(a: &Matrix<f64>, tol: f64) {
        let n = a.rows();
        let SymEvd { values, vectors } = sym_evd(a);
        // Orthonormal eigenvectors.
        assert!(
            vectors.orthonormality_defect() < tol,
            "defect {}",
            vectors.orthonormality_defect()
        );
        // A·v = λ·v for each pair.
        for (j, &lambda) in values.iter().enumerate() {
            let v = vectors.col(j);
            for i in 0..n {
                let av: f64 = (0..n).map(|k| a[(i, k)] * v[k]).sum();
                assert!(
                    (av - lambda * v[i]).abs() < tol * (1.0 + lambda.abs()),
                    "residual at ({i},{j}): {} vs {}",
                    av,
                    lambda * v[i]
                );
            }
        }
        // Descending order.
        for j in 1..n {
            assert!(values[j - 1] >= values[j] - 1e-12);
        }
    }

    #[test]
    fn evd_diagonal_matrix() {
        let mut a = Matrix::zeros(4, 4);
        for (i, &v) in [3.0, -1.0, 7.0, 0.5].iter().enumerate() {
            a[(i, i)] = v;
        }
        let evd = sym_evd(&a);
        assert!((evd.values[0] - 7.0).abs() < 1e-14);
        assert!((evd.values[3] - (-1.0)).abs() < 1e-14);
        check_evd(&a, 1e-12);
    }

    #[test]
    fn evd_2x2_known() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 2.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 2.0;
        let evd = sym_evd(&a);
        assert!((evd.values[0] - 3.0).abs() < 1e-14);
        assert!((evd.values[1] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn evd_random_matrices_various_sizes() {
        for (n, seed) in [(1, 1u64), (2, 2), (3, 3), (5, 4), (10, 5), (30, 6), (64, 7)] {
            let a = random_symmetric(n, seed);
            check_evd(&a, 1e-9);
        }
    }

    #[test]
    fn evd_clustered_and_zero_eigenvalues() {
        // Rank-deficient PSD matrix: B Bᵀ with B 6x2.
        let mut rng = StdRng::seed_from_u64(11);
        let b: Matrix<f64> = ratucker_tensor::random::normal_matrix(6, 2, &mut rng);
        let a = b.matmul(&b.transpose());
        let evd = sym_evd(&a);
        check_evd(&a, 1e-9);
        // Four eigenvalues ≈ 0.
        for j in 2..6 {
            assert!(evd.values[j].abs() < 1e-10, "λ_{j} = {}", evd.values[j]);
        }
    }

    #[test]
    fn evd_recovers_known_spectrum() {
        // Q Λ Qᵀ with a chosen spectrum.
        let mut rng = StdRng::seed_from_u64(21);
        let q: Matrix<f64> = random_orthonormal(8, 8, &mut rng);
        let lambda = [9.0, 5.0, 4.0, 1.0, 0.5, 0.25, 0.1, 0.0];
        let mut a = Matrix::zeros(8, 8);
        for i in 0..8 {
            for j in 0..8 {
                let mut acc = 0.0;
                for k in 0..8 {
                    acc += q[(i, k)] * lambda[k] * q[(j, k)];
                }
                a[(i, j)] = acc;
            }
        }
        let evd = sym_evd(&a);
        for (got, want) in evd.values.iter().zip(lambda.iter()) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn evd_f32_works() {
        let mut a = Matrix::<f32>::zeros(3, 3);
        a[(0, 0)] = 4.0;
        a[(1, 1)] = 2.0;
        a[(2, 2)] = 1.0;
        a[(0, 1)] = 0.5;
        a[(1, 0)] = 0.5;
        let evd = sym_evd(&a);
        assert!(evd.vectors.orthonormality_defect() < 1e-5);
        assert!(evd.values[0] > evd.values[1]);
    }

    #[test]
    fn non_finite_input_is_a_typed_error() {
        let mut a = random_symmetric(5, 31);
        a[(2, 3)] = f64::NAN;
        a[(3, 2)] = f64::NAN;
        assert_eq!(try_sym_evd(&a).unwrap_err(), EvdError::NonFinite);
        a[(2, 3)] = f64::INFINITY;
        a[(3, 2)] = f64::INFINITY;
        assert_eq!(try_sym_evd(&a).unwrap_err(), EvdError::NonFinite);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn panicking_wrapper_reports_non_finite_input() {
        let mut a = random_symmetric(4, 32);
        a[(0, 0)] = f64::NAN;
        let _ = sym_evd(&a);
    }

    #[test]
    fn try_sym_evd_matches_panicking_wrapper() {
        let a = random_symmetric(7, 33);
        let fallible = try_sym_evd(&a).unwrap();
        let plain = sym_evd(&a);
        assert_eq!(fallible.values, plain.values);
        assert_eq!(fallible.vectors.max_abs_diff(&plain.vectors), 0.0);
    }

    #[test]
    fn evd_error_messages_are_descriptive() {
        assert!(EvdError::NonFinite.to_string().contains("non-finite"));
        let e = EvdError::NoConvergence {
            eigenvalue: 3,
            iters: 50,
        };
        assert!(e.to_string().contains("eigenvalue 3"), "{e}");
        assert!(e.to_string().contains("50"), "{e}");
    }

    #[test]
    fn rank_for_error_rules() {
        let ev = [10.0, 4.0, 1.0, 0.5, 0.25];
        // Discard nothing: tail must be ≤ threshold.
        assert_eq!(rank_for_error(&ev, 0.0), 5);
        assert_eq!(rank_for_error(&ev, 0.25), 4);
        assert_eq!(rank_for_error(&ev, 0.75), 3);
        assert_eq!(rank_for_error(&ev, 1.75), 2);
        assert_eq!(rank_for_error(&ev, 5.75), 1);
        // Rank never drops below 1 even with a huge budget.
        assert_eq!(rank_for_error(&ev, 1e9), 1);
        // Negative round-off eigenvalues are ignored.
        assert_eq!(rank_for_error(&[4.0, 1.0, -1e-17], 1.0 + 1e-12), 1);
    }
}
