//! Singular value decomposition via one-sided Jacobi.
//!
//! The Tucker algorithms obtain leading left singular vectors through the
//! Gram+EVD route or subspace iteration; this module provides an
//! *independent* high-accuracy SVD used to cross-validate those routes in
//! tests, and for small-matrix needs (e.g. analyzing factor subspaces).

use ratucker_tensor::flops;
use ratucker_tensor::kernels;
use ratucker_tensor::matrix::Matrix;
use ratucker_tensor::scalar::Scalar;

/// Thin SVD `A = U Σ Vᵀ` with singular values descending.
#[derive(Clone, Debug)]
pub struct Svd<T: Scalar> {
    /// Left singular vectors (`m × k`).
    pub u: Matrix<T>,
    /// Singular values, largest first.
    pub sigma: Vec<T>,
    /// Right singular vectors (`n × k`).
    pub v: Matrix<T>,
}

/// One-sided Jacobi SVD (Hestenes). Robust and simple; `O(mn²)` per sweep
/// with quadratic convergence once nearly orthogonal.
///
/// For `m < n` the routine factors `Aᵀ` and swaps the factors.
pub fn svd_jacobi<T: Scalar>(a: &Matrix<T>) -> Svd<T> {
    if a.rows() < a.cols() {
        let t = svd_jacobi(&a.transpose());
        return Svd {
            u: t.v,
            sigma: t.sigma,
            v: t.u,
        };
    }
    let m = a.rows();
    let n = a.cols();
    let mut u = a.clone();
    let mut v: Matrix<T> = Matrix::identity(n);
    let tol = T::EPSILON * T::from_f64(8.0);
    let max_sweeps = 60;

    for _sweep in 0..max_sweeps {
        let mut off = T::ZERO;
        for p in 0..n {
            for q in p + 1..n {
                // 2x2 Gram block of columns p, q.
                let (cp, cq) = u.cols_mut_pair(p, q);
                let alpha = kernels::dot(cp, cp);
                let beta = kernels::dot(cq, cq);
                let gamma = kernels::dot(cp, cq);
                if alpha == T::ZERO || beta == T::ZERO {
                    continue;
                }
                let denom = (alpha * beta).sqrt();
                let ortho = gamma.abs() / denom;
                off = off.max_s(ortho);
                if ortho <= tol {
                    continue;
                }
                // Jacobi rotation orthogonalizing the column pair.
                let two = T::from_f64(2.0);
                let zeta = (beta - alpha) / (two * gamma);
                let t = {
                    let sign = if zeta >= T::ZERO { T::ONE } else { -T::ONE };
                    sign / (zeta.abs() + (T::ONE + zeta * zeta).sqrt())
                };
                let c = T::ONE / (T::ONE + t * t).sqrt();
                let s = c * t;
                flops::add(6 * (m + n) as u64);
                for i in 0..m {
                    let up = cp[i];
                    let uq = cq[i];
                    cp[i] = c * up - s * uq;
                    cq[i] = s * up + c * uq;
                }
                let (vp, vq) = v.cols_mut_pair(p, q);
                for i in 0..n {
                    let a_ = vp[i];
                    let b_ = vq[i];
                    vp[i] = c * a_ - s * b_;
                    vq[i] = s * a_ + c * b_;
                }
            }
        }
        if off <= tol {
            break;
        }
    }

    // Singular values are the column norms of the rotated U.
    let mut sigma: Vec<T> = (0..n).map(|j| kernels::nrm2(u.col(j))).collect();
    // Sort descending with columns.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        sigma[j]
            .partial_cmp(&sigma[i])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut u_sorted = Matrix::zeros(m, n);
    let mut v_sorted = Matrix::zeros(n, n);
    let mut s_sorted = vec![T::ZERO; n];
    for (new, &old) in order.iter().enumerate() {
        s_sorted[new] = sigma[old];
        v_sorted.col_mut(new).copy_from_slice(v.col(old));
        let col = u.col(old);
        if sigma[old] > T::ZERO {
            let inv = T::ONE / sigma[old];
            for (dst, &src) in u_sorted.col_mut(new).iter_mut().zip(col) {
                *dst = src * inv;
            }
        }
    }
    sigma = s_sorted;
    Svd {
        u: u_sorted,
        sigma,
        v: v_sorted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ratucker_tensor::random::{normal_matrix, random_orthonormal};

    fn check_svd(a: &Matrix<f64>, tol: f64) {
        let Svd { u, sigma, v } = svd_jacobi(a);
        let k = sigma.len();
        // Reconstruct A = U Σ Vᵀ.
        let mut us = u.clone();
        for (j, &s) in sigma.iter().enumerate() {
            for x in us.col_mut(j) {
                *x *= s;
            }
        }
        let rec = us.matmul(&v.transpose());
        assert!(
            rec.max_abs_diff(a) < tol,
            "reconstruction {}",
            rec.max_abs_diff(a)
        );
        // Descending.
        for j in 1..k {
            assert!(sigma[j - 1] >= sigma[j] - 1e-12);
        }
        assert!(v.orthonormality_defect() < tol);
    }

    #[test]
    fn svd_random_tall_and_wide() {
        let mut rng = StdRng::seed_from_u64(10);
        let a: Matrix<f64> = normal_matrix(9, 5, &mut rng);
        check_svd(&a, 1e-11);
        let b: Matrix<f64> = normal_matrix(4, 8, &mut rng);
        check_svd(&b, 1e-11);
    }

    #[test]
    fn svd_known_singular_values() {
        // A = U diag(5,3,1) Vᵀ built from random orthonormal factors.
        let mut rng = StdRng::seed_from_u64(12);
        let u: Matrix<f64> = random_orthonormal(7, 3, &mut rng);
        let v: Matrix<f64> = random_orthonormal(4, 3, &mut rng);
        let mut us = u.clone();
        let s_true = [5.0, 3.0, 1.0];
        for (j, &s) in s_true.iter().enumerate() {
            for x in us.col_mut(j) {
                *x *= s;
            }
        }
        let a = us.matmul(&v.transpose());
        let svd = svd_jacobi(&a);
        for (j, &s) in s_true.iter().enumerate() {
            assert!((svd.sigma[j] - s).abs() < 1e-12, "{}", svd.sigma[j]);
        }
        assert!(svd.sigma[3].abs() < 1e-12);
    }

    #[test]
    fn svd_matches_gram_evd_spectrum() {
        // σ_i² must equal the eigenvalues of A Aᵀ.
        let mut rng = StdRng::seed_from_u64(13);
        let a: Matrix<f64> = normal_matrix(6, 10, &mut rng);
        let svd = svd_jacobi(&a);
        let gram = a.matmul(&a.transpose());
        let evd = crate::evd::sym_evd(&gram);
        for j in 0..6 {
            assert!(
                (svd.sigma[j] * svd.sigma[j] - evd.values[j]).abs() < 1e-9,
                "σ²={} λ={}",
                svd.sigma[j] * svd.sigma[j],
                evd.values[j]
            );
        }
    }

    #[test]
    fn svd_zero_matrix() {
        let a: Matrix<f64> = Matrix::zeros(3, 2);
        let svd = svd_jacobi(&a);
        assert!(svd.sigma.iter().all(|&s| s == 0.0));
    }
}
