//! Dense linear algebra substrate for the RA-HOOI reproduction.
//!
//! The paper's system (TuckerMPI + this paper's extension) leans on vendor
//! BLAS/LAPACK for four factorizations; this crate implements all of them
//! from scratch in safe Rust:
//!
//! - [`evd::sym_evd`] — symmetric EVD (Householder tridiagonalization +
//!   implicit-shift QL), the Gram-route LLSV and STHOSVD's sequential
//!   bottleneck;
//! - [`qr::qr`] / [`qr::qrcp`] — Householder QR and QR with column
//!   pivoting, the orthonormalization step of subspace iteration (Alg. 5);
//! - [`svd::svd_jacobi`] — an independent one-sided Jacobi SVD used to
//!   cross-validate the two LLSV routes in tests.
//!
//! GEMM-level kernels live in `ratucker-tensor::kernels` because the TTM
//! slab views call them directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod evd;
pub mod qr;
pub mod svd;

pub use evd::{rank_for_error, sym_evd, try_sym_evd, EvdError, SymEvd};
pub use qr::{qr, qrcp, QrFactors};
pub use svd::{svd_jacobi, Svd};

/// Common imports.
pub mod prelude {
    pub use crate::evd::{rank_for_error, sym_evd, try_sym_evd, EvdError, SymEvd};
    pub use crate::qr::{qr, qrcp, QrFactors};
    pub use crate::svd::{svd_jacobi, Svd};
}
