//! Householder QR and QR with column pivoting (QRCP).
//!
//! The subspace-iteration LLSV (Alg. 5, line 4) orthonormalizes the
//! `n × r` iterate `Z` with QRCP. Pivoting serves two purposes in the
//! paper: numerical rank revelation, and *ordering* the output columns by
//! importance so the core's weight concentrates toward low indices —
//! which is what makes the leading-subtensor search of the core analysis
//! (§3.2) a reasonable heuristic.

use ratucker_tensor::flops;
use ratucker_tensor::kernels;
use ratucker_tensor::matrix::Matrix;
use ratucker_tensor::scalar::Scalar;

/// Result of a (pivoted) QR factorization: `A[:, perm] = Q · R` with `Q`
/// thin (`m × k`, `k = min(m, n)`) and orthonormal, `R` upper triangular.
#[derive(Clone, Debug)]
pub struct QrFactors<T: Scalar> {
    /// Orthonormal basis of the column space, pivots first.
    pub q: Matrix<T>,
    /// Upper-triangular factor (`k × n`).
    pub r: Matrix<T>,
    /// Column permutation: original column `perm[j]` maps to position `j`.
    /// Identity for the unpivoted factorization.
    pub perm: Vec<usize>,
}

/// Unpivoted Householder QR (thin).
pub fn qr<T: Scalar>(a: &Matrix<T>) -> QrFactors<T> {
    householder_qr(a.clone(), false)
}

/// QR with column pivoting (LAPACK `dgeqp3`-style norm downdating with the
/// cancellation-recompute safeguard).
pub fn qrcp<T: Scalar>(a: &Matrix<T>) -> QrFactors<T> {
    householder_qr(a.clone(), true)
}

fn householder_qr<T: Scalar>(mut a: Matrix<T>, pivot: bool) -> QrFactors<T> {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);
    flops::add(2 * (n as u64) * (n as u64) * (m as u64));

    let mut perm: Vec<usize> = (0..n).collect();
    // Current and original residual column norms for pivoting.
    let mut col_norms: Vec<T> = (0..n).map(|j| kernels::nrm2(a.col(j))).collect();
    let orig_norms = col_norms.clone();
    // Householder vectors are stored below the diagonal of `a`; the scalar
    // taus in `taus`.
    let mut taus = vec![T::ZERO; k];

    for step in 0..k {
        if pivot {
            // Select the remaining column with the largest residual norm.
            let (best, _) = col_norms[step..].iter().enumerate().fold(
                (0usize, T::ZERO),
                |(bi, bv), (i, &v)| {
                    if v > bv {
                        (i, v)
                    } else {
                        (bi, bv)
                    }
                },
            );
            let best = step + best;
            if best != step {
                perm.swap(step, best);
                col_norms.swap(step, best);
                let (c1, c2) = a.cols_mut_pair(step, best);
                c1.swap_with_slice(c2);
            }
        }

        // Build the Householder reflector for column `step`, rows `step..`.
        let (tau, beta) = {
            let col = &mut a.col_mut(step)[step..];
            make_householder(col)
        };
        taus[step] = tau;

        // Apply (I - tau v vᵀ) to the trailing columns.
        if tau != T::ZERO {
            for j in step + 1..n {
                let dot = {
                    let (cs, cj) = a.cols_mut_pair(step, j);
                    let v = &cs[step..];
                    let c = &cj[step..];
                    kernels::dot(v, c)
                };
                let scale = tau * dot;
                let (cs, cj) = a.cols_mut_pair(step, j);
                let v = &cs[step..];
                let c = &mut cj[step..];
                kernels::axpy(-scale, v, c);
            }
        }
        // The diagonal entry of R.
        a[(step, step)] = beta;

        if pivot {
            // Downdate residual norms; recompute on cancellation
            // (`dgeqp3` safeguard: if the downdated norm has lost more
            // than ~half the digits of the original, recompute exactly).
            for j in step + 1..n {
                let r_entry = a[(step, j)].abs();
                let cn = col_norms[j];
                if cn > T::ZERO {
                    let ratio = r_entry / cn;
                    let tmp = (T::ONE - ratio * ratio).max_s(T::ZERO);
                    let safe = tmp.sqrt() * cn;
                    let orig = orig_norms[perm[j]];
                    let rel = if orig > T::ZERO { safe / orig } else { T::ZERO };
                    if rel * rel <= T::EPSILON * T::from_f64(100.0) {
                        col_norms[j] = kernels::nrm2(&a.col(j)[step + 1..]);
                    } else {
                        col_norms[j] = safe;
                    }
                }
            }
        }
    }

    // Extract R (k × n upper triangular).
    let mut r = Matrix::zeros(k, n);
    for j in 0..n {
        for i in 0..=j.min(k - 1) {
            r[(i, j)] = a[(i, j)];
        }
    }

    // Form the thin Q by applying the reflectors to the first k identity
    // columns, from the last reflector to the first.
    let mut q = Matrix::zeros(m, k);
    for j in 0..k {
        q[(j, j)] = T::ONE;
    }
    for step in (0..k).rev() {
        let tau = taus[step];
        if tau == T::ZERO {
            continue;
        }
        for j in 0..k {
            // v has implicit 1 at `step`, entries a[step+1.., step] below.
            let mut dot = q[(step, j)];
            {
                let v = &a.col(step)[step + 1..];
                let c = &q.col(j)[step + 1..];
                dot += kernels::dot(v, c);
            }
            let scale = tau * dot;
            q[(step, j)] -= scale;
            kernels::axpy(
                -scale,
                &a.col(step)[step + 1..],
                &mut q.col_mut(j)[step + 1..],
            );
        }
    }

    QrFactors { q, r, perm }
}

/// Builds a Householder reflector in place: on entry `col` is the vector
/// `x`; on exit `col[0]` is unused (caller overwrites with `beta`),
/// `col[1..]` holds the reflector tail `v[1..]` (with `v[0] = 1` implicit).
/// Returns `(tau, beta)` such that `(I − τ v vᵀ) x = β e₁`.
fn make_householder<T: Scalar>(col: &mut [T]) -> (T, T) {
    let alpha = col[0];
    let xnorm = kernels::nrm2(&col[1..]);
    if xnorm == T::ZERO {
        return (T::ZERO, alpha);
    }
    let beta = -alpha.hypot(xnorm).copysign_s(alpha);
    let tau = (beta - alpha) / beta;
    let inv = T::ONE / (alpha - beta);
    kernels::scal(inv, &mut col[1..]);
    col[0] = T::ONE;
    (tau, beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ratucker_tensor::random::normal_matrix;

    fn reconstruct<T: Scalar>(f: &QrFactors<T>, n: usize) -> Matrix<T> {
        // A[:, perm[j]] = (Q R)[:, j]  ⇒  A = Q R P⁻¹.
        let qr_prod = f.q.matmul(&f.r);
        let mut a = Matrix::zeros(f.q.rows(), n);
        for j in 0..n {
            a.col_mut(f.perm[j]).copy_from_slice(qr_prod.col(j));
        }
        a
    }

    #[test]
    fn qr_reconstructs_tall() {
        let mut rng = StdRng::seed_from_u64(1);
        let a: Matrix<f64> = normal_matrix(8, 5, &mut rng);
        let f = qr(&a);
        assert!(f.q.orthonormality_defect() < 1e-13);
        assert!(reconstruct(&f, 5).max_abs_diff(&a) < 1e-13);
        // R upper triangular.
        for j in 0..5 {
            for i in j + 1..5 {
                assert_eq!(f.r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn qr_reconstructs_wide() {
        let mut rng = StdRng::seed_from_u64(2);
        let a: Matrix<f64> = normal_matrix(4, 7, &mut rng);
        let f = qr(&a);
        assert_eq!(f.q.cols(), 4);
        assert!(f.q.orthonormality_defect() < 1e-13);
        assert!(reconstruct(&f, 7).max_abs_diff(&a) < 1e-13);
    }

    #[test]
    fn qrcp_reconstructs_and_orders_diagonal() {
        let mut rng = StdRng::seed_from_u64(3);
        let a: Matrix<f64> = normal_matrix(10, 6, &mut rng);
        let f = qrcp(&a);
        assert!(f.q.orthonormality_defect() < 1e-13);
        assert!(reconstruct(&f, 6).max_abs_diff(&a) < 1e-12);
        // |R[j,j]| non-increasing (pivoting property).
        for j in 1..6 {
            assert!(
                f.r[(j, j)].abs() <= f.r[(j - 1, j - 1)].abs() + 1e-12,
                "diag not ordered at {j}"
            );
        }
        // perm is a permutation.
        let mut seen = f.perm.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn qrcp_rank_deficient() {
        // Rank-2 matrix: QRCP must push near-zeros to trailing diagonal.
        let mut rng = StdRng::seed_from_u64(4);
        let b: Matrix<f64> = normal_matrix(8, 2, &mut rng);
        let c: Matrix<f64> = normal_matrix(2, 5, &mut rng);
        let a = b.matmul(&c);
        let f = qrcp(&a);
        assert!(reconstruct(&f, 5).max_abs_diff(&a) < 1e-12);
        for j in 2..5 {
            assert!(f.r[(j, j)].abs() < 1e-10, "R[{j},{j}] = {}", f.r[(j, j)]);
        }
    }

    #[test]
    fn qrcp_identity_input() {
        let a: Matrix<f64> = Matrix::identity(4);
        let f = qrcp(&a);
        assert!(f.q.orthonormality_defect() < 1e-14);
        assert!(reconstruct(&f, 4).max_abs_diff(&a) < 1e-14);
    }

    #[test]
    fn qr_zero_column_is_handled() {
        let mut a: Matrix<f64> = Matrix::zeros(5, 3);
        a[(0, 0)] = 1.0;
        a[(1, 2)] = 2.0;
        // Column 1 is identically zero.
        let f = qrcp(&a);
        assert!(reconstruct(&f, 3).max_abs_diff(&a) < 1e-14);
        assert!(f.q.orthonormality_defect() < 1e-13);
    }

    #[test]
    fn qr_single_column() {
        let a = Matrix::from_vec(3, 1, vec![3.0f64, 0.0, 4.0]);
        let f = qr(&a);
        assert!((f.r[(0, 0)].abs() - 5.0).abs() < 1e-14);
        assert!(reconstruct(&f, 1).max_abs_diff(&a) < 1e-14);
    }

    #[test]
    fn qrcp_f32() {
        let mut rng = StdRng::seed_from_u64(5);
        let a: Matrix<f32> = normal_matrix(12, 4, &mut rng);
        let f = qrcp(&a);
        assert!(f.q.orthonormality_defect() < 1e-5);
        assert!(reconstruct(&f, 4).max_abs_diff(&a) < 1e-4);
    }
}
