//! Facade crate for the RA-HOOI reproduction workspace.
//!
//! Re-exports the public APIs of every workspace crate so examples and
//! downstream users can depend on a single crate:
//!
//! ```
//! use ra_hooi::prelude::*;
//! ```
//!
//! The individual crates are:
//! - [`tensor`] — dense d-way tensors, unfoldings, TTM kernels.
//! - [`linalg`] — GEMM, symmetric EVD, QR, QR with column pivoting, SVD.
//! - [`mpi`] — the threaded message-passing runtime (MPI stand-in).
//! - [`dist`] — block-distributed tensors and distributed kernels.
//! - [`mem`] — per-rank allocation ledger, budgets, degradation rungs.
//! - [`tucker`] — STHOSVD, HOOI variants, and rank-adaptive HOSI-DT.
//! - [`datasets`] — scientific-simulation stand-in generators.
//! - [`perfmodel`] — analytic cost model and scaling simulator.
//! - [`obs`] — span tracing, traffic attribution, perf-model validation.
//! - [`serve`] — the multi-tenant compression service over the fabric.

pub use ratucker as tucker;
pub use ratucker_datasets as datasets;
pub use ratucker_dist as dist;
pub use ratucker_linalg as linalg;
pub use ratucker_mem as mem;
pub use ratucker_mpi as mpi;
pub use ratucker_obs as obs;
pub use ratucker_perfmodel as perfmodel;
pub use ratucker_serve as serve;
pub use ratucker_tensor as tensor;

/// One-stop imports for examples and quick experiments.
pub mod prelude {
    pub use ratucker::prelude::*;
    pub use ratucker_linalg::prelude::*;
    pub use ratucker_tensor::prelude::*;
}
