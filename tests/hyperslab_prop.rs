//! Property test for the serve layer's hyperslab queries: partial
//! decompression through the [`CoreStore`] must be **bit-identical** to
//! reconstructing the full tensor and slicing it at the same
//! coordinates, for random problems and random slabs, d ∈ {3, 4}.
//!
//! This is the contract that lets a service client verify a query
//! response against its own full decompression without any tolerance
//! negotiation: `extract_hyperslab` applies the TTMs in mode order with
//! row-sliced factors, so every retained element is produced by exactly
//! the arithmetic the full reconstruction performs.

use proptest::prelude::*;
use ra_hooi::prelude::*;
use ra_hooi::serve::{CoreStore, StoredCore};

/// Strategy: (dims, true ranks, noise, seed, slab_seed) for a small
/// synthetic problem of order 3 or 4.
fn arb_problem() -> impl Strategy<Value = (Vec<usize>, Vec<usize>, f64, u64, u64)> {
    (3usize..=4)
        .prop_flat_map(|d| {
            (
                prop::collection::vec(5usize..=8, d..=d),
                prop::collection::vec(2usize..=3, d..=d),
            )
        })
        .prop_flat_map(|(dims, ranks)| {
            (
                Just(dims),
                Just(ranks),
                0.0f64..0.2,
                0u64..10_000,
                0u64..u64::MAX,
            )
        })
}

/// Deterministic slab from a seed: any offset, any length ≥ 1 that
/// stays in bounds (splitmix64 per mode).
fn derive_slab(dims: &[usize], slab_seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut state = slab_seed;
    let mut next = || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    let mut offsets = Vec::with_capacity(dims.len());
    let mut lens = Vec::with_capacity(dims.len());
    for &n in dims {
        let len = 1 + (next() % n as u64) as usize;
        offsets.push((next() % (n - len + 1) as u64) as usize);
        lens.push(len);
    }
    (offsets, lens)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn store_extraction_is_bitwise_a_subarray_of_full_reconstruction(
        (dims, ranks, noise, seed, slab_seed) in arb_problem()
    ) {
        let x = SyntheticSpec::new(&dims, &ranks, noise, seed).build::<f64>();
        let cfg = RaConfig::ra_hosi_dt(0.15, &vec![2; dims.len()])
            .with_seed(seed)
            .with_alpha(2.0)
            .with_max_iters(2);
        let res = ra_hooi(&x, &cfg);
        let full = res.tucker.reconstruct();

        let mut store = CoreStore::new();
        store.insert("prop", "t", StoredCore {
            tucker: res.tucker,
            rel_error: res.rel_error,
        });

        let (offsets, lens) = derive_slab(&dims, slab_seed);
        let slab = store
            .extract("prop", "t", &offsets, &lens)
            .expect("in-bounds slab");
        prop_assert_eq!(slab.shape().dims(), lens.as_slice());
        for idx in slab.shape().indices() {
            let gidx: Vec<usize> = idx.iter().zip(&offsets).map(|(&i, &o)| i + o).collect();
            let got = slab.get(&idx);
            let want = full.get(&gidx);
            prop_assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{:?}: {:e} != {:e} bitwise (dims {:?}, offsets {:?}, lens {:?})",
                idx, got, want, &dims, &offsets, &lens
            );
        }
    }
}
