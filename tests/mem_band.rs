//! Pins the band between the perfmodel peak-memory *prediction* and the
//! ledger-*measured* per-rank high-water mark (see
//! `ratucker_perfmodel::memory` and `DESIGN.md` §14).
//!
//! The prediction is structural (resident state + the largest staging
//! slab) and must bound every rank's measured high-water mark from
//! above once the admission margin is applied, without being more than
//! `BAND` times the largest measured mark — a model that over-predicts
//! by 10x would admit nothing, one that under-predicts would admit runs
//! the ledger then kills.

use ra_hooi::dist::DistTensor;
use ra_hooi::mpi::{CartGrid, Universe};
use ra_hooi::perfmodel::{estimate_peak, MemProblem, ADMISSION_MARGIN};
use ra_hooi::prelude::*;
use ra_hooi::tucker::{dist_ra_hooi_resilient, ResilienceConfig, ResilientOutcome};

/// The documented band: margin-adjusted prediction / largest measured
/// high-water mark stays below this.
const BAND: f64 = 2.0;

#[test]
fn perfmodel_peak_bounds_measured_hwm_within_band() {
    let dims = [24usize, 20, 16];
    let grid_dims = [2usize, 2, 2];
    let spec = SyntheticSpec::new(&dims, &[6, 6, 4], 0.01, 914);
    let cfg = RaConfig::ra_hosi_dt(0.1, &[3, 3, 2])
        .with_seed(31)
        .with_alpha(2.0)
        .with_max_iters(3);

    let u = Universe::new(8);
    u.set_mem_budget(Some(1 << 30));
    let results = u.run(move |c| {
        let grid = CartGrid::new(c, &grid_dims);
        let x = DistTensor::scatter_from_replicated(&grid, &spec.build::<f64>());
        // Measure the run itself: the scattered block stays live, so it
        // is still part of every later high-water mark.
        ra_hooi::mem::reset_hwm();
        let res = ResilienceConfig::default();
        match dist_ra_hooi_resilient(&grid, &x, &cfg, &res).unwrap() {
            ResilientOutcome::Completed { result, .. } => {
                (ra_hooi::mem::stats().hwm, result.tucker.ranks())
            }
            other => panic!("fault-free run must complete, got {other:?}"),
        }
    });

    let final_ranks = results[0].1.clone();
    let hwm_max = results.iter().map(|r| r.0).max().unwrap();
    let prob = MemProblem {
        dims: dims.to_vec(),
        grid: grid_dims.to_vec(),
        ranks: final_ranks.clone(),
        buddy_degree: 1,
        abft: false,
        elem_bytes: 8,
    };
    let pred = (estimate_peak(&prob, 0).peak() as f64 * ADMISSION_MARGIN) as u64;
    println!(
        "final_ranks={final_ranks:?} hwm per rank={:?} max={hwm_max} raw_pred={} margin_pred={pred}",
        results.iter().map(|r| r.0).collect::<Vec<_>>(),
        estimate_peak(&prob, 0).peak(),
    );

    assert!(
        pred >= hwm_max,
        "the admission-margin prediction must bound the measured peak: \
         predicted {pred} B < measured {hwm_max} B"
    );
    assert!(
        (pred as f64) <= BAND * hwm_max as f64,
        "the prediction is uselessly loose: predicted {pred} B > \
         {BAND} x measured {hwm_max} B"
    );
}
