//! Property tests for the packed GEMM/SYRK kernels against the naive
//! oracles, over adversarial shapes: every dimension drawn from
//! `{1..=17} ∪ {31, 64, 65}` (tiny, odd, power-of-two, and
//! just-past-power-of-two sizes hit all microkernel edge-tile and
//! cache-block remainder paths), with non-unit leading dimensions and
//! accumulation into a nonzero C — and bitwise identity between 1 and 4
//! worker threads (the DESIGN.md §16 determinism contract).

use proptest::prelude::*;
use ra_hooi::tensor::kernels::{gemm_nn, gemm_nt, gemm_tn, syrk_nt, syrk_tn};
use ra_hooi::tensor::par;
use ra_hooi::tensor::Matrix;
use ratucker_verify::oracle::matmul_naive;
use ratucker_verify::tolerances::TOL_ORACLE;

/// The worker-count sweep is process-global state; tests that flip it
/// must not interleave.
static THREADS_GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Adversarial dimension: everything up to 17 plus the sizes that
/// straddle the MR/NR tiles and the KC block edge.
fn arb_dim() -> impl Strategy<Value = usize> {
    (0usize..20).prop_map(|v| match v {
        17 => 31,
        18 => 64,
        19 => 65,
        small => small + 1,
    })
}

/// A column-major `rows × cols` operand embedded in a buffer with
/// leading dimension `rows + pad`, filled with a seeded pattern.
#[derive(Clone, Debug)]
struct Padded {
    rows: usize,
    cols: usize,
    ld: usize,
    buf: Vec<f64>,
}

impl Padded {
    fn matrix(&self) -> Matrix<f64> {
        Matrix::from_fn(self.rows, self.cols, |i, j| self.buf[i + j * self.ld])
    }
}

fn arb_padded(rows: usize, cols: usize) -> impl Strategy<Value = Padded> {
    (0usize..=3, 0u64..1000).prop_map(move |(pad, seed)| {
        let ld = rows + pad;
        let buf = (0..ld * cols)
            .map(|t| (((t as u64 * 2654435761 + seed * 97) % 2000) as f64 / 1000.0 - 1.0).sin())
            .collect();
        Padded {
            rows,
            cols,
            ld,
            buf,
        }
    })
}

/// (m, n, k, variant, A, B, C) with operand storage shaped per variant
/// (0 = nn, 1 = tn, 2 = nt) and independent padding on each buffer.
fn arb_gemm_case() -> impl Strategy<Value = (usize, usize, usize, usize, Padded, Padded, Padded)> {
    (arb_dim(), arb_dim(), arb_dim(), 0usize..3).prop_flat_map(|(m, n, k, variant)| {
        let (a_rows, a_cols) = if variant == 1 { (k, m) } else { (m, k) };
        let (b_rows, b_cols) = if variant == 2 { (n, k) } else { (k, n) };
        (
            Just((m, n, k, variant)),
            arb_padded(a_rows, a_cols),
            arb_padded(b_rows, b_cols),
            arb_padded(m, n),
        )
            .prop_map(|(dims, a, b, c)| (dims.0, dims.1, dims.2, dims.3, a, b, c))
    })
}

/// (n, k, nt_kind, A, C) for the SYRK orientations.
fn arb_syrk_case() -> impl Strategy<Value = (usize, usize, bool, Padded, Padded)> {
    (arb_dim(), arb_dim(), 0usize..2).prop_flat_map(|(n, k, which)| {
        let nt_kind = which == 1;
        let (a_rows, a_cols) = if nt_kind { (n, k) } else { (k, n) };
        (
            Just((n, k, nt_kind)),
            arb_padded(a_rows, a_cols),
            arb_padded(n, n),
        )
            .prop_map(|(dims, a, c)| (dims.0, dims.1, dims.2, a, c))
    })
}

/// Runs `f` (which fills a fresh copy of `c0`) at 1 and 4 workers,
/// asserts bitwise identity, and returns the result.
fn run_at_1_and_4(c0: &[f64], f: impl Fn(&mut [f64])) -> Vec<f64> {
    let _g = THREADS_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    par::set_num_threads(1);
    let mut c1 = c0.to_vec();
    f(&mut c1);
    par::set_num_threads(4);
    let mut c4 = c0.to_vec();
    f(&mut c4);
    par::set_num_threads(1);
    for (i, (x, y)) in c1.iter().zip(&c4).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "thread-count divergence at index {i}: {x:e} vs {y:e}"
        );
    }
    c1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Packed gemm_nn/tn/nt vs the naive oracle, accumulating into a
    /// nonzero C, bit-identical at 1 and 4 workers.
    #[test]
    fn gemm_variants_match_oracle_and_threads(
        (m, n, k, variant, a, b, c) in arb_gemm_case()
    ) {
        let want = {
            let (am, bm) = match variant {
                0 => (a.matrix(), b.matrix()),
                1 => (a.matrix().transpose(), b.matrix()),
                _ => (a.matrix(), b.matrix().transpose()),
            };
            let mut w = matmul_naive(&am, &bm);
            // The kernels accumulate: add the preexisting C.
            let c0 = c.matrix();
            for j in 0..n {
                for i in 0..m {
                    w[(i, j)] += c0[(i, j)];
                }
            }
            w
        };

        let got = run_at_1_and_4(&c.buf, |cbuf| match variant {
            0 => gemm_nn(m, n, k, &a.buf, a.ld, &b.buf, b.ld, cbuf, c.ld),
            1 => gemm_tn(m, n, k, &a.buf, a.ld, &b.buf, b.ld, cbuf, c.ld),
            _ => gemm_nt(m, n, k, &a.buf, a.ld, &b.buf, b.ld, cbuf, c.ld),
        });

        for j in 0..n {
            for i in 0..m {
                let g = got[i + j * c.ld];
                let w = want[(i, j)];
                prop_assert!(
                    (g - w).abs() <= TOL_ORACLE * (1.0 + w.abs()),
                    "variant {} ({}x{}x{}) at ({},{}): {} vs {}",
                    variant, m, n, k, i, j, g, w
                );
            }
        }
    }

    /// Packed SYRK (both orientations, the Gram building block) vs the
    /// naive oracle, accumulating into a nonzero symmetric C,
    /// bit-identical at 1 and 4 workers, exactly symmetric.
    #[test]
    fn syrk_matches_oracle_and_threads(
        (n, k, nt_kind, a, c) in arb_syrk_case()
    ) {
        // Symmetrize the preexisting C so the mirrored output stays
        // comparable entry-wise.
        let mut cbuf0 = c.buf.clone();
        for j in 0..n {
            for i in 0..j {
                cbuf0[i + j * c.ld] = cbuf0[j + i * c.ld];
            }
        }

        let want = {
            let am = a.matrix();
            let mut w = if nt_kind {
                matmul_naive(&am, &am.transpose())
            } else {
                matmul_naive(&am.transpose(), &am)
            };
            for j in 0..n {
                for i in 0..n {
                    w[(i, j)] += cbuf0[i + j * c.ld];
                }
            }
            w
        };

        let got = run_at_1_and_4(&cbuf0, |cbuf| {
            if nt_kind {
                syrk_nt(n, k, &a.buf, a.ld, cbuf, c.ld);
            } else {
                syrk_tn(n, k, &a.buf, a.ld, cbuf, c.ld);
            }
        });

        for j in 0..n {
            for i in 0..n {
                let g = got[i + j * c.ld];
                let w = want[(i, j)];
                prop_assert!(
                    (g - w).abs() <= TOL_ORACLE * (1.0 + w.abs()),
                    "syrk nt={} ({}x{}, k={}) at ({},{}): {} vs {}",
                    nt_kind, n, n, k, i, j, g, w
                );
            }
        }
        // The mirror makes symmetry exact, not approximate.
        for j in 0..n {
            for i in 0..j {
                prop_assert_eq!(
                    got[i + j * c.ld].to_bits(),
                    got[j + i * c.ld].to_bits()
                );
            }
        }
    }
}
