//! Integration tests spanning the algorithm crates: the paper's
//! qualitative claims, checked end to end on synthetic data.

use ra_hooi::prelude::*;

fn synthetic(
    dims: &[usize],
    ranks: &[usize],
    noise: f64,
    seed: u64,
) -> ra_hooi::tensor::DenseTensor<f64> {
    SyntheticSpec::new(dims, ranks, noise, seed).build()
}

/// Claim (§1, §3.1): randomly initialized HOOI converges to
/// STHOSVD-comparable error in as few as 1–2 iterations, for every
/// variant.
#[test]
fn hooi_matches_sthosvd_error_in_two_sweeps() {
    let x = synthetic(&[20, 18, 16, 14], &[4, 4, 3, 3], 0.05, 301);
    let st = sthosvd(&x, &SthosvdTruncation::Ranks(vec![4, 4, 3, 3]));
    for cfg in [
        HooiConfig::hooi(),
        HooiConfig::hooi_dt(),
        HooiConfig::hosi(),
        HooiConfig::hosi_dt(),
    ] {
        let res = hooi(&x, &[4, 4, 3, 3], &cfg.with_max_iters(2).with_seed(3));
        assert!(
            res.rel_error() <= st.rel_error * 1.02 + 1e-12,
            "{:?} err {} vs STHOSVD {}",
            res.tucker.ranks(),
            res.rel_error(),
            st.rel_error
        );
    }
}

/// HOOI can *refine* STHOSVD: initializing HOOI from STHOSVD's factors
/// never increases the error (block coordinate descent is monotone).
#[test]
fn hooi_refines_sthosvd_initialization() {
    let x = synthetic(&[18, 16, 14], &[3, 3, 3], 0.1, 303);
    let st = sthosvd(&x, &SthosvdTruncation::Ranks(vec![3, 3, 3]));
    let res = ra_hooi::tucker::hooi_with_init(
        &x,
        &[3, 3, 3],
        st.tucker.factors.clone(),
        &HooiConfig::hooi().with_max_iters(2),
    );
    assert!(
        res.rel_error() <= st.rel_error + 1e-12,
        "refinement increased error: {} -> {}",
        st.rel_error,
        res.rel_error()
    );
}

/// The error identity ‖X−X̂‖² = ‖X‖² − ‖G‖² must agree with explicit
/// reconstruction for every algorithm's output.
#[test]
fn error_identity_consistent_across_algorithms() {
    let x = synthetic(&[14, 12, 10], &[3, 3, 2], 0.05, 307);
    let xns = x.squared_norm_f64();

    let st = sthosvd(&x, &SthosvdTruncation::RelError(0.1));
    let direct = st.tucker.reconstruct().rel_error(&x);
    assert!((direct - st.tucker.rel_error_from_core(xns)).abs() < 1e-9);

    let ho = hooi(&x, &[3, 3, 2], &HooiConfig::hosi_dt().with_max_iters(2));
    let direct = ho.tucker.reconstruct().rel_error(&x);
    assert!((direct - ho.tucker.rel_error_from_core(xns)).abs() < 1e-9);

    let ra = ra_hooi(&x, &RaConfig::ra_hosi_dt(0.1, &[3, 3, 2]).with_max_iters(2));
    let direct = ra.tucker.reconstruct().rel_error(&x);
    assert!((direct - ra.rel_error).abs() < 1e-9);
}

/// Claim (§5): the rank-adaptive core analysis can shift rank across
/// modes and find decompositions at least as small as STHOSVD's greedy
/// per-mode choice, at equal tolerance.
#[test]
fn ra_storage_is_competitive_with_sthosvd() {
    // A tensor with deliberately unbalanced mode spectra.
    let x = {
        let mut spec = ratucker_datasets::miranda_like(2);
        spec.decay = vec![0.5, 0.25, 0.12];
        spec.build::<f64>()
    };
    let eps = 0.05;
    let st = sthosvd(&x, &SthosvdTruncation::RelError(eps));
    let start = st.tucker.ranks();
    let cfg = RaConfig::ra_hosi_dt(eps, &start)
        .with_seed(5)
        .with_max_iters(3);
    let ra = ra_hooi(&x, &cfg);
    assert!(ra.rel_error <= eps, "tolerance violated: {}", ra.rel_error);
    let st_size = st.tucker.storage_entries() as f64;
    let ra_size = ra.tucker.storage_entries() as f64;
    assert!(
        ra_size <= st_size * 1.1,
        "RA storage {ra_size} much worse than STHOSVD {st_size}"
    );
}

/// Error-specified STHOSVD satisfies its tolerance across a ladder of ε
/// on every stand-in dataset (precision-matched, as in the paper).
#[test]
fn error_specified_tolerances_hold_on_datasets() {
    let miranda = ratucker_datasets::miranda_like(2).build::<f32>();
    let hcci = ratucker_datasets::hcci_like(2).build::<f64>();
    for &eps in &[0.1, 0.05] {
        let st = sthosvd(&miranda, &SthosvdTruncation::RelError(eps));
        assert!(st.rel_error <= eps, "miranda ε={eps}: {}", st.rel_error);
        let st = sthosvd(&hcci, &SthosvdTruncation::RelError(eps));
        assert!(st.rel_error <= eps, "hcci ε={eps}: {}", st.rel_error);
    }
}

/// RA from undershot ranks must grow monotonically until feasible, then
/// truncate to a feasible decomposition (Alg. 3's two branches).
#[test]
fn ra_rank_trajectory_is_sane() {
    let x = synthetic(&[16, 16, 16], &[4, 4, 4], 0.02, 311);
    let cfg = RaConfig::ra_hosi_dt(0.05, &[2, 2, 2])
        .with_alpha(1.5)
        .with_seed(9)
        .with_max_iters(4);
    let res = ra_hooi(&x, &cfg);
    let mut seen_met = false;
    for it in &res.iterations {
        if it.met_threshold {
            seen_met = true;
            // Truncation never grows ranks.
            assert!(it.ranks_out.iter().zip(&it.ranks_in).all(|(o, i)| o <= i));
        } else {
            assert!(!it.truncated);
            // Growth is monotone and capped by dims.
            assert!(it.ranks_out.iter().zip(&it.ranks_in).all(|(o, i)| o >= i));
            assert!(it.ranks_out.iter().all(|&r| r <= 16));
        }
    }
    assert!(
        seen_met,
        "never met tolerance: {:?}",
        res.iterations
            .iter()
            .map(|i| i.rel_error)
            .collect::<Vec<_>>()
    );
    assert!(res.rel_error <= 0.05);
}

/// The perfmodel's crossover rule (§3.1: HOSI-DT wins when n/r > 8 for
/// ℓ = 2) must be visible in *measured* flops too.
#[test]
fn measured_flop_crossover_matches_theory() {
    // High reduction: n/r = 16 → HOSI-DT must use fewer flops.
    let x = synthetic(&[32, 32, 32], &[2, 2, 2], 1e-3, 313);
    let st = sthosvd(&x, &SthosvdTruncation::Ranks(vec![2, 2, 2]));
    let hd = hooi(&x, &[2, 2, 2], &HooiConfig::hosi_dt().with_max_iters(2));
    assert!(
        hd.timings.total_flops() < st.timings.total_flops(),
        "HOSI-DT {} vs STHOSVD {}",
        hd.timings.total_flops(),
        st.timings.total_flops()
    );

    // Low reduction: n/r = 2 → STHOSVD must use fewer flops.
    let x = synthetic(&[16, 16, 16], &[8, 8, 8], 1e-3, 317);
    let st = sthosvd(&x, &SthosvdTruncation::Ranks(vec![8, 8, 8]));
    let hd = hooi(&x, &[8, 8, 8], &HooiConfig::hosi_dt().with_max_iters(2));
    assert!(
        hd.timings.total_flops() > st.timings.total_flops(),
        "expected STHOSVD cheaper at low reduction"
    );
}
