//! Chaos suite: distributed decompositions under injected faults.
//!
//! Every scenario must end in one of exactly two ways — a correct result
//! or a clean *typed* error — never a hang and never a silent wrong
//! answer. Fault plans are seeded and counter-hashed, so each scenario
//! is replayable from its `(seed, plan)` pair.
//!
//! Scenario catalogue (ISSUE tentpole 5):
//! 1. delay-only STHOSVD at P = 4 — semantics preserving, bit-equal;
//! 2. delay-only HOOI at P = 8 — semantics preserving, bit-equal;
//! 3. message drops at P = 2 — surface as typed timeouts, fast;
//! 4. NaN payload injection at P = 2 — caught by the kernel screens;
//! 5. rank crash mid-HOOI at P = 4 — peers fail fast with typed errors;
//! 6. rank crash mid-RA-HOSI-DT at P = 4 → checkpoint resume matches the
//!    fault-free decomposition within 1e-10 and meets ε;
//! 7. sampled mixed fault plans over STHOSVD *and* RA-HOSI-DT — each
//!    sampled run is correct-or-typed-error.
//!
//! Online-recovery scenarios (ISSUE "shrink-and-continue" tentpole):
//! 8. kill 1 of 8 ranks mid-RA-HOSI-DT sweep → the survivors finish
//!    **online** (agree → shrink → buddy restore → continue), with no
//!    disk restart, matching the fault-free run within 1e-10;
//! 9. kill a rank *and* its only buddy at the same mid-sweep op → every
//!    survivor reports a clean `FallbackToCheckpoint`, and the disk
//!    resume then matches the fault-free run within 1e-10;
//! 10. sampled mixed fault plans through the resilient solver — each
//!     sampled run either completes bit-equal to fault-free (transient
//!     faults were retried or missed) or fails with a typed error.
//!
//! Gray-failure scenarios (ISSUE "deadlines, retries, demotion"
//! tentpole):
//! 11. a persistently slow (but alive and correct) rank at P = 8 is
//!     confirmed by the induced-wait straggler detector, demoted online
//!     through the shrink path, and the survivors converge within 1e-10
//!     of the fault-free run — without ever waiting out the recv
//!     timeout;
//! 12. a flaky link (seeded intermittent drops at probability 0.2) is
//!     fully healed by send-side retry-with-backoff: no failure
//!     surfaces and the result is bit-identical to fault-free;
//! 13. a dead-slow rank under a strict per-collective deadline is
//!     blamed, retired, and (with replication disabled) every survivor
//!     reports a clean `FallbackToCheckpoint`; the disk resume then
//!     matches the fault-free run within 1e-10.
//!
//! Memory-pressure scenarios (ISSUE "budget + degradation ladder"
//! tentpole):
//! 14. a mid-sweep per-rank budget shrink at P = 8 trips a typed
//!     `BudgetExceeded`, the collectively-agreed degradation ladder
//!     steps to rung 1 (chunked TTM reduction), and the run completes
//!     on the full grid bit-identical to fault-free — memory pressure
//!     costs footprint, never accuracy;
//! 15. a budget below what even the cheapest rung needs exhausts the
//!     ladder: every rank reports a clean `FallbackToCheckpoint` (no
//!     rank dead, reason naming the memory budget), and the disk
//!     resume on a healthy universe matches the fault-free run within
//!     1e-10.
//!
//! Service scenarios (ISSUE "multi-tenant service" tentpole):
//! 16. kill one rank mid-compress *through the service* under load:
//!     the victim job still completes (online recovery, or checkpoint
//!     fallback + resume), concurrent query jobs on other stored cores
//!     keep succeeding throughout, the one-shot plan does not leak
//!     into the next job on the warm universe, and the per-tenant
//!     traffic charges still partition the global ledger exactly.

use std::path::PathBuf;
use std::time::Duration;

use ra_hooi::dist::DistTensor;
use ra_hooi::mpi::{
    CartGrid, CorruptMode, DeadlinePolicy, FaultPlan, RankFailure, RetryPolicy, Universe,
};
use ra_hooi::obs::StragglerPolicy;
use ra_hooi::prelude::*;
use ra_hooi::serve::{CompressSpec, JobOutcome, QuerySpec, Request, ServeConfig, Service};
use ra_hooi::tucker::dist::{dist_hooi, dist_ra_hooi, dist_ra_hooi_checkpointed, dist_sthosvd};
use ra_hooi::tucker::{dist_ra_hooi_resilient, ResilienceConfig, ResilientOutcome};
use ratucker_verify::tolerances::TOL_DIST_REL_ERROR;

/// The full set of messages a typed failure is allowed to carry. Anything
/// else is an untyped panic leaking through the fault layer.
const TYPED_FAILURES: &[&str] = &[
    "timed out waiting for a message",
    "fabric channel closed",
    "unexpected element type",
    "injected fault at rank",
    "injected crash",
    "detected corrupted data",
    "silent data corruption",
    "communicator revoked",
    "wrong-sized payload",
    "deadline budget",
    "demoted by the failure detector",
];

fn assert_typed(f: &RankFailure) {
    assert!(
        TYPED_FAILURES.iter().any(|t| f.message.contains(t)),
        "rank {} failed with an untyped panic: {}",
        f.rank,
        f.message
    );
}

fn ckpt_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ratucker_chaos_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

// ---------------------------------------------------------------- 1 & 2

#[test]
fn delay_only_sthosvd_p4_is_bit_identical_to_fault_free() {
    let spec = SyntheticSpec::new(&[12, 10, 8], &[3, 3, 2], 0.02, 901);
    let plan = FaultPlan::quiet(17).with_delays(0.4, Duration::from_millis(2));
    assert!(plan.is_semantics_preserving());

    let s = spec.clone();
    let baseline = Universe::launch(4, move |c| {
        let grid = CartGrid::new(c, &[2, 2, 1]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        let res = dist_sthosvd(&grid, &x, &SthosvdTruncation::RelError(0.1));
        (res.rel_error, res.tucker.ranks())
    });

    let s = spec.clone();
    let u = Universe::with_fault_plan(4, plan);
    let delayed = u.run(move |c| {
        let grid = CartGrid::new(c, &[2, 2, 1]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        let res = dist_sthosvd(&grid, &x, &SthosvdTruncation::RelError(0.1));
        (res.rel_error, res.tucker.ranks())
    });

    for (b, d) in baseline.iter().zip(&delayed) {
        assert_eq!(
            b.0.to_bits(),
            d.0.to_bits(),
            "rel_error drifted under delays"
        );
        assert_eq!(b.1, d.1, "ranks drifted under delays");
    }
}

#[test]
fn delay_only_hooi_p8_is_bit_identical_to_fault_free() {
    let spec = SyntheticSpec::new(&[12, 10, 8], &[3, 3, 2], 0.02, 902);
    let cfg = HooiConfig::hosi_dt().with_max_iters(2).with_seed(5);
    let plan = FaultPlan::quiet(23).with_delays(0.25, Duration::from_millis(1));
    assert!(plan.is_semantics_preserving());

    let s = spec.clone();
    let c2 = cfg.clone();
    let baseline = Universe::launch(8, move |c| {
        let grid = CartGrid::new(c, &[2, 2, 2]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        dist_hooi(&grid, &x, &[3, 3, 2], &c2).rel_error
    });

    let s = spec.clone();
    let c2 = cfg.clone();
    let u = Universe::with_fault_plan(8, plan);
    let delayed = u.run(move |c| {
        let grid = CartGrid::new(c, &[2, 2, 2]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        dist_hooi(&grid, &x, &[3, 3, 2], &c2).rel_error
    });

    for (b, d) in baseline.iter().zip(&delayed) {
        assert_eq!(b.to_bits(), d.to_bits(), "rel_error drifted under delays");
    }
}

// ------------------------------------------------------------------- 3

#[test]
fn dropped_messages_surface_as_typed_timeouts_not_hangs() {
    let spec = SyntheticSpec::new(&[10, 8], &[3, 2], 0.02, 903);
    let plan = FaultPlan::quiet(29).with_drops(1.0);
    let u = Universe::with_fault_plan(2, plan);
    u.set_recv_timeout(Duration::from_millis(250));

    let started = std::time::Instant::now();
    let results = u.try_run(move |c| {
        let grid = CartGrid::new(c, &[2, 1]);
        let x = DistTensor::scatter_from_replicated(&grid, &spec.build::<f64>());
        dist_sthosvd(&grid, &x, &SthosvdTruncation::RelError(0.1)).rel_error
    });

    let failures: Vec<&RankFailure> = results.iter().filter_map(|r| r.as_ref().err()).collect();
    assert!(!failures.is_empty(), "dropping every message must fail");
    for f in &failures {
        assert_typed(f);
    }
    assert!(
        failures.iter().any(|f| f.message.contains("timed out")
            || f.message.contains("fabric channel closed")),
        "at least one rank must observe the lost message: {failures:?}"
    );
    // "Never hang": everything resolved within a few timeout periods.
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "drop scenario took {:?}",
        started.elapsed()
    );
}

// ------------------------------------------------------------------- 4

#[test]
fn nan_injection_is_caught_by_the_kernel_screens() {
    let spec = SyntheticSpec::new(&[10, 8], &[3, 2], 0.02, 904);
    let plan = FaultPlan::quiet(31).with_corruption(1.0, CorruptMode::NanInject);
    let u = Universe::with_fault_plan(2, plan);
    u.set_recv_timeout(Duration::from_secs(5));

    let results = u.try_run(move |c| {
        let grid = CartGrid::new(c, &[2, 1]);
        let x = DistTensor::scatter_from_replicated(&grid, &spec.build::<f64>());
        dist_sthosvd(&grid, &x, &SthosvdTruncation::RelError(0.1)).rel_error
    });

    let failures: Vec<&RankFailure> = results.iter().filter_map(|r| r.as_ref().err()).collect();
    assert!(!failures.is_empty(), "NaN injection must not pass silently");
    for f in &failures {
        assert_typed(f);
    }
    assert!(
        failures
            .iter()
            .any(|f| f.message.contains("detected corrupted data")),
        "the numerical screens must name the corruption: {failures:?}"
    );
}

// ------------------------------------------------------------------- 5

#[test]
fn rank_crash_mid_hooi_fails_fast_with_typed_errors() {
    let spec = SyntheticSpec::new(&[12, 10, 8], &[3, 3, 2], 0.02, 905);
    let cfg = HooiConfig::hosi_dt().with_max_iters(2).with_seed(5);
    let plan = FaultPlan::quiet(37).with_crash(2, 25);
    let u = Universe::with_fault_plan(4, plan);
    u.set_recv_timeout(Duration::from_secs(5));

    let started = std::time::Instant::now();
    let results = u.try_run(move |c| {
        let grid = CartGrid::new(c, &[2, 2, 1]);
        let x = DistTensor::scatter_from_replicated(&grid, &spec.build::<f64>());
        dist_hooi(&grid, &x, &[3, 3, 2], &cfg).rel_error
    });

    let failures: Vec<&RankFailure> = results.iter().filter_map(|r| r.as_ref().err()).collect();
    assert!(!failures.is_empty(), "a scheduled crash must be observed");
    for f in &failures {
        assert_typed(f);
    }
    assert!(
        failures
            .iter()
            .any(|f| f.rank == 2 && f.message.contains("injected crash")),
        "rank 2's own failure must carry the crash payload: {failures:?}"
    );
    // Survivors fail fast on the retired peer rather than waiting out the
    // receive timeout.
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "crash scenario took {:?}",
        started.elapsed()
    );
}

// ------------------------------------------------------------------- 6

#[test]
fn crash_then_checkpoint_resume_matches_the_fault_free_run() {
    let spec = SyntheticSpec::new(&[12, 10, 8], &[3, 3, 2], 0.01, 906);
    let cfg = RaConfig::ra_hosi_dt(0.1, &[2, 2, 2])
        .with_seed(31)
        .with_alpha(2.0)
        .with_max_iters(3);
    let dir = ckpt_dir("crash_resume");

    // Fault-free reference.
    let s = spec.clone();
    let c2 = cfg.clone();
    let reference = Universe::launch(4, move |c| {
        let grid = CartGrid::new(c, &[2, 2, 1]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        let res = dist_ra_hooi(&grid, &x, &c2);
        (res.rel_error, res.tucker.gather(&grid))
    })
    .into_iter()
    .next()
    .unwrap();
    assert!(
        reference.0 <= cfg.eps,
        "reference run must meet the tolerance, got {}",
        reference.0
    );

    // Crash rank 1 mid-run while checkpointing every sweep.
    let s = spec.clone();
    let c2 = cfg.clone();
    let policy = CheckpointPolicy::new(&dir).every(1);
    let u = Universe::with_fault_plan(4, FaultPlan::quiet(41).with_crash(1, 60));
    u.set_recv_timeout(Duration::from_secs(5));
    let faulty = u.try_run(move |c| {
        let grid = CartGrid::new(c, &[2, 2, 1]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        dist_ra_hooi_checkpointed(&grid, &x, &c2, &policy).rel_error
    });
    let failures: Vec<&RankFailure> = faulty.iter().filter_map(|r| r.as_ref().err()).collect();
    assert!(!failures.is_empty(), "the crash at op 60 must be observed");
    for f in &failures {
        assert_typed(f);
    }

    // Resume from whatever checkpoint survived; with an empty directory
    // this degrades to a fresh run, which must *also* match.
    let s = spec.clone();
    let c2 = cfg.clone();
    let policy = CheckpointPolicy::new(&dir).every(1).resuming();
    let resumed = Universe::launch(4, move |c| {
        let grid = CartGrid::new(c, &[2, 2, 1]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        let res = dist_ra_hooi_checkpointed(&grid, &x, &c2, &policy);
        (res.rel_error, res.tucker.gather(&grid))
    })
    .into_iter()
    .next()
    .unwrap();

    // Acceptance: resume reproduces the fault-free decomposition within
    // 1e-10 and still meets ε.
    assert!(
        (resumed.0 - reference.0).abs() <= 1e-10,
        "rel_error diverged after resume: {} vs {}",
        resumed.0,
        reference.0
    );
    assert!(resumed.0 <= cfg.eps, "resumed run missed ε: {}", resumed.0);
    assert_eq!(resumed.1.ranks(), reference.1.ranks());
    assert!(
        resumed.1.core.max_abs_diff(&reference.1.core) <= 1e-10,
        "core diverged after resume"
    );
    for (a, b) in resumed.1.factors.iter().zip(&reference.1.factors) {
        assert!(a.max_abs_diff(b) <= 1e-10, "factor diverged after resume");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------------------------- 7

#[test]
fn sampled_fault_plans_always_end_in_result_or_typed_error() {
    let spec = SyntheticSpec::new(&[10, 8, 6], &[3, 2, 2], 0.02, 907);
    let ra = RaConfig::ra_hosi_dt(0.15, &[2, 2, 2])
        .with_seed(13)
        .with_alpha(2.0)
        .with_max_iters(2);

    // Fault-free references.
    let s = spec.clone();
    let st_ref = Universe::launch(2, move |c| {
        let grid = CartGrid::new(c, &[2, 1, 1]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        dist_sthosvd(&grid, &x, &SthosvdTruncation::RelError(0.15)).rel_error
    })[0];
    let s = spec.clone();
    let r2 = ra.clone();
    let ra_ref = Universe::launch(2, move |c| {
        let grid = CartGrid::new(c, &[2, 1, 1]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        dist_ra_hooi(&grid, &x, &r2).rel_error
    })[0];

    for seed in 0..6u64 {
        let plan = FaultPlan::quiet(seed)
            .with_delays(0.2, Duration::from_millis(1))
            .with_drops(0.02)
            .with_corruption(0.02, CorruptMode::NanInject);
        let u = Universe::with_fault_plan(2, plan);
        u.set_recv_timeout(Duration::from_millis(500));

        let s = spec.clone();
        let r2 = ra.clone();
        let results = u.try_run(move |c| {
            let grid = CartGrid::new(c, &[2, 1, 1]);
            let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
            // Alternate algorithms across sampled seeds; both ranks must
            // agree, so the choice is keyed on the seed only.
            if seed % 2 == 0 {
                dist_sthosvd(&grid, &x, &SthosvdTruncation::RelError(0.15)).rel_error
            } else {
                dist_ra_hooi(&grid, &x, &r2).rel_error
            }
        });

        let want = if seed % 2 == 0 { st_ref } else { ra_ref };
        for r in &results {
            match r {
                // Drops / corruption happened to miss: the answer must be
                // *correct*, not merely finite.
                Ok(got) => assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "seed {seed}: survived faults but answer drifted"
                ),
                Err(f) => assert_typed(f),
            }
        }
    }
}

// ------------------------------------------------------------------- 8

/// Per-rank digest of a resilient run for the crash scenarios.
#[derive(Debug)]
enum Digest {
    Completed {
        rel_error: f64,
        core_norm: f64,
        recoveries: usize,
        restored: Vec<usize>,
        final_grid: Vec<usize>,
        max_rung: u8,
    },
    Spare,
    Fallback {
        dead: Vec<usize>,
    },
}

fn digest(outcome: ResilientOutcome<f64>) -> Digest {
    match outcome {
        ResilientOutcome::Completed {
            result,
            grid,
            report,
        } => Digest::Completed {
            rel_error: result.rel_error,
            core_norm: result.tucker.gather(&grid).core.squared_norm_f64().sqrt(),
            recoveries: report.recoveries,
            restored: report.restored_ranks,
            final_grid: report.final_grid,
            max_rung: report.max_rung,
        },
        ResilientOutcome::Spare { .. } => Digest::Spare,
        ResilientOutcome::FallbackToCheckpoint { dead, .. } => Digest::Fallback { dead },
    }
}

#[test]
fn kill_one_of_eight_mid_sweep_recovers_online_within_1e10() {
    let spec = SyntheticSpec::new(&[12, 10, 8], &[3, 3, 2], 0.01, 908);
    let cfg = RaConfig::ra_hosi_dt(0.1, &[2, 2, 2])
        .with_seed(31)
        .with_alpha(2.0)
        .with_max_iters(3);

    // Fault-free reference on the full [2,2,2] grid.
    let s = spec.clone();
    let c2 = cfg.clone();
    let (ref_err, ref_core_norm) = Universe::launch(8, move |c| {
        let grid = CartGrid::new(c, &[2, 2, 2]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        let res = dist_ra_hooi(&grid, &x, &c2);
        let core_norm = res.tucker.gather(&grid).core.squared_norm_f64().sqrt();
        (res.rel_error, core_norm)
    })
    .into_iter()
    .next()
    .unwrap();
    assert!(ref_err <= cfg.eps, "reference missed ε: {ref_err}");

    // Kill rank 5 mid-sweep; no checkpoint policy is attached, so the
    // *only* way to finish is the online shrink-and-continue path.
    let victim = 5usize;
    let s = spec.clone();
    let c2 = cfg.clone();
    let u = Universe::with_fault_plan(8, FaultPlan::quiet(43).with_crash(victim, 60));
    u.set_recv_timeout(Duration::from_secs(5));
    let started = std::time::Instant::now();
    let results = u.try_run(move |c| {
        let grid = CartGrid::new(c, &[2, 2, 2]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        digest(dist_ra_hooi_resilient(&grid, &x, &c2, &ResilienceConfig::default()).unwrap())
    });

    let f = results[victim].as_ref().unwrap_err();
    assert!(
        f.message.contains("injected crash"),
        "victim must die of the scheduled crash: {}",
        f.message
    );
    let mut completed = 0;
    let mut spares = 0;
    for (rank, r) in results.iter().enumerate() {
        if rank == victim {
            continue;
        }
        match r.as_ref().expect("survivors must not panic") {
            Digest::Completed {
                rel_error,
                core_norm,
                recoveries,
                restored,
                final_grid,
                ..
            } => {
                completed += 1;
                assert!(*recoveries >= 1);
                assert!(restored.contains(&victim), "restored {restored:?}");
                // 7 survivors → largest grid elementwise ≤ [2,2,2] is 4.
                assert_eq!(final_grid.iter().product::<usize>(), 4);
                assert!(
                    (rel_error - ref_err).abs() <= 1e-10,
                    "rank {rank}: rel_error diverged online: {rel_error} vs {ref_err}"
                );
                assert!(
                    (core_norm - ref_core_norm).abs() <= 1e-10 * ref_core_norm.max(1.0),
                    "rank {rank}: core norm diverged online: {core_norm} vs {ref_core_norm}"
                );
                assert!(*rel_error <= cfg.eps, "recovered run missed ε");
            }
            Digest::Spare => spares += 1,
            Digest::Fallback { dead } => {
                panic!("rank {rank} fell back to disk (dead {dead:?}) — recovery must be online")
            }
        }
    }
    assert_eq!((completed, spares), (4, 3), "4 actives + 3 spares");
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "online recovery took {:?}",
        started.elapsed()
    );
}

// ------------------------------------------------------------------- 9

#[test]
fn killing_rank_and_buddy_falls_back_to_checkpoint_cleanly() {
    let spec = SyntheticSpec::new(&[12, 10, 8], &[3, 3, 2], 0.01, 909);
    let cfg = RaConfig::ra_hosi_dt(0.1, &[2, 2, 2])
        .with_seed(31)
        .with_alpha(2.0)
        .with_max_iters(3);
    let dir = ckpt_dir("double_crash");

    // Fault-free reference.
    let s = spec.clone();
    let c2 = cfg.clone();
    let reference = Universe::launch(4, move |c| {
        let grid = CartGrid::new(c, &[2, 2, 1]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        let res = dist_ra_hooi(&grid, &x, &c2);
        (res.rel_error, res.tucker.gather(&grid))
    })
    .into_iter()
    .next()
    .unwrap();

    // With degree-1 replication rank 2's only replica lives on rank 3:
    // crash both at the same mid-sweep op and in-memory recovery is
    // impossible by construction.
    let s = spec.clone();
    let c2 = cfg.clone();
    let policy = CheckpointPolicy::new(&dir).every(1);
    let res_cfg = ResilienceConfig::default()
        .with_checkpoint(policy.clone())
        .with_buddy_degree(1);
    let plan = FaultPlan::quiet(47).with_crash(2, 60).with_crash(3, 60);
    let u = Universe::with_fault_plan(4, plan);
    u.set_recv_timeout(Duration::from_secs(5));
    let results = u.try_run(move |c| {
        let grid = CartGrid::new(c, &[2, 2, 1]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        digest(dist_ra_hooi_resilient(&grid, &x, &c2, &res_cfg).unwrap())
    });
    for rank in [2usize, 3] {
        let f = results[rank].as_ref().unwrap_err();
        assert_typed(f);
    }
    for rank in [0usize, 1] {
        match results[rank].as_ref().expect("survivors must not panic") {
            Digest::Fallback { dead } => {
                assert!(dead.contains(&2), "dead set {dead:?} must name rank 2");
            }
            Digest::Completed { .. } | Digest::Spare => {
                panic!("rank {rank}: degree-1 replication cannot survive a rank+buddy loss")
            }
        }
    }

    // RTCK: resume from the surviving checkpoint and match the fault-free
    // decomposition within 1e-10 (exactly the scenario-6 acceptance).
    let s = spec.clone();
    let c2 = cfg.clone();
    let policy = policy.resuming();
    let resumed = Universe::launch(4, move |c| {
        let grid = CartGrid::new(c, &[2, 2, 1]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        let res = dist_ra_hooi_checkpointed(&grid, &x, &c2, &policy);
        (res.rel_error, res.tucker.gather(&grid))
    })
    .into_iter()
    .next()
    .unwrap();
    assert!(
        (resumed.0 - reference.0).abs() <= 1e-10,
        "rel_error diverged after the disk fallback: {} vs {}",
        resumed.0,
        reference.0
    );
    assert_eq!(resumed.1.ranks(), reference.1.ranks());
    assert!(resumed.1.core.max_abs_diff(&reference.1.core) <= 1e-10);

    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------------------------ 10

#[test]
fn sampled_fault_plans_through_the_resilient_solver() {
    let spec = SyntheticSpec::new(&[10, 8, 6], &[3, 2, 2], 0.02, 910);
    let ra = RaConfig::ra_hosi_dt(0.15, &[2, 2, 2])
        .with_seed(13)
        .with_alpha(2.0)
        .with_max_iters(2);

    // Fault-free reference (the resilient path is bit-identical to the
    // plain one when nothing fails).
    let s = spec.clone();
    let r2 = ra.clone();
    let want = Universe::launch(2, move |c| {
        let grid = CartGrid::new(c, &[2, 1, 1]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        dist_ra_hooi(&grid, &x, &r2).rel_error
    })[0];

    for seed in 0..6u64 {
        let plan = FaultPlan::quiet(100 + seed)
            .with_delays(0.2, Duration::from_millis(1))
            .with_drops(0.02)
            .with_corruption(0.02, CorruptMode::NanInject);
        let u = Universe::with_fault_plan(2, plan);
        u.set_recv_timeout(Duration::from_millis(500));

        let s = spec.clone();
        let r2 = ra.clone();
        let results = u.try_run(move |c| {
            let grid = CartGrid::new(c, &[2, 1, 1]);
            let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
            let res = ResilienceConfig::default().with_abft(ra_hooi::dist::AbftMode::Detect);
            // Surface solver errors with their Display text so they land
            // in the typed-failure whitelist, as the drivers would.
            digest(dist_ra_hooi_resilient(&grid, &x, &r2, &res).unwrap_or_else(|e| panic!("{e}")))
        });

        for r in &results {
            match r {
                // Same-topology retries are bit-transparent: the sweep
                // restarts from the replicated pre-sweep snapshot, so a
                // run that rides out its faults on the original grid
                // must land the exact fault-free answer.
                Ok(Digest::Completed {
                    rel_error,
                    final_grid,
                    ..
                }) if final_grid == &[2, 1, 1] => assert_eq!(
                    rel_error.to_bits(),
                    want.to_bits(),
                    "seed {seed}: transient faults must be retried into the exact answer"
                ),
                // A mid-run shrink moves the remaining sweeps onto a
                // smaller grid whose collectives reduce in a different
                // order; bit-identity is a per-grid contract (the
                // conformance suite holds grids to the sequential
                // oracle only within TOL_DIST_REL_ERROR), so a shrunk
                // completion is held to that same cross-grid tolerance.
                Ok(Digest::Completed {
                    rel_error,
                    final_grid,
                    ..
                }) => assert!(
                    (rel_error - want).abs() < TOL_DIST_REL_ERROR,
                    "seed {seed}: shrunk completion on {final_grid:?} drifted \
                     past the cross-grid tolerance: {rel_error} vs {want}"
                ),
                // At P = 2 a "failure" consensus can leave a lone
                // survivor as the whole grid or a fallback — both are
                // clean typed outcomes, not hangs.
                Ok(Digest::Spare) | Ok(Digest::Fallback { .. }) => {}
                Err(f) => assert_typed(f),
            }
        }
    }
}

// ------------------------------------------------------------------ 11

#[test]
fn persistent_straggler_at_p8_is_demoted_online_within_1e10() {
    let spec = SyntheticSpec::new(&[12, 10, 8], &[3, 3, 2], 0.01, 911);
    let cfg = RaConfig::ra_hosi_dt(0.1, &[2, 2, 2])
        .with_seed(31)
        .with_alpha(2.0)
        .with_max_iters(3);

    // Fault-free reference on the full [2,2,2] grid.
    let s = spec.clone();
    let c2 = cfg.clone();
    let ref_err = Universe::launch(8, move |c| {
        let grid = CartGrid::new(c, &[2, 2, 2]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        dist_ra_hooi(&grid, &x, &c2).rel_error
    })[0];

    // Rank 5 never crashes and never corrupts a payload — it is just
    // slow on every data-plane operation. Liveness probes cannot see
    // this; only the induced-wait signal can.
    let victim = 5usize;
    let plan = FaultPlan::quiet(53).with_slow_rank(victim, Duration::from_millis(5));
    assert!(plan.is_semantics_preserving());
    let u = Universe::with_fault_plan(8, plan);
    u.set_recv_timeout(Duration::from_secs(120));

    let s = spec.clone();
    let c2 = cfg.clone();
    let started = std::time::Instant::now();
    let results = u.try_run(move |c| {
        let grid = CartGrid::new(c, &[2, 2, 2]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        let res = ResilienceConfig::default().with_straggler(
            StragglerPolicy::new(2.0)
                .with_consecutive(1)
                .with_min_secs(0.05),
        );
        digest(dist_ra_hooi_resilient(&grid, &x, &c2, &res).unwrap())
    });

    let mut completed = 0;
    let mut spares = 0;
    for (rank, r) in results.iter().enumerate() {
        match r.as_ref().expect("no rank panics under demotion") {
            Digest::Completed {
                rel_error,
                recoveries,
                restored,
                final_grid,
                ..
            } => {
                completed += 1;
                assert!(*recoveries >= 1, "rank {rank}");
                assert!(restored.contains(&victim), "restored {restored:?}");
                // 7 survivors → largest grid elementwise ≤ [2,2,2] is 4.
                assert_eq!(final_grid.iter().product::<usize>(), 4);
                assert!(
                    (rel_error - ref_err).abs() <= 1e-10,
                    "rank {rank}: demotion diverged: {rel_error} vs {ref_err}"
                );
                assert!(*rel_error <= cfg.eps, "demoted run missed ε");
            }
            Digest::Spare => spares += 1,
            Digest::Fallback { dead } => {
                panic!("rank {rank} fell back to disk (dead {dead:?}) — demotion must be online")
            }
        }
    }
    // The demoted straggler exits as a spare alongside the 3 ranks that
    // do not fit the shrunken grid.
    assert_eq!((completed, spares), (4, 4), "4 actives + 4 spares");
    assert!(matches!(results[victim], Ok(Digest::Spare)));
    // "Never hangs": nothing waited out the 120 s receive timeout.
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "straggler demotion took {:?}",
        started.elapsed()
    );
}

// ------------------------------------------------------------------ 12

#[test]
fn flaky_link_is_fully_healed_by_retries_bit_identically() {
    let spec = SyntheticSpec::new(&[12, 10, 8], &[3, 3, 2], 0.01, 912);
    let cfg = RaConfig::ra_hosi_dt(0.1, &[2, 2, 2])
        .with_seed(31)
        .with_alpha(2.0)
        .with_max_iters(3);

    let s = spec.clone();
    let c2 = cfg.clone();
    let baseline = Universe::launch(4, move |c| {
        let grid = CartGrid::new(c, &[2, 2, 1]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        dist_ra_hooi(&grid, &x, &c2).rel_error
    });

    // The 0→1 link drops each message with probability 0.2 (seeded, so
    // the run is replayable); the sender retransmits with backoff.
    let plan = FaultPlan::quiet(59).with_flaky_link(0, 1, 0.2);
    assert!(!plan.is_semantics_preserving(), "flaky links lose data");
    let u = Universe::with_fault_plan(4, plan);
    u.set_retry_policy(Some(RetryPolicy::new(10)));

    let s = spec.clone();
    let c2 = cfg.clone();
    let healed = u.try_run(move |c| {
        let grid = CartGrid::new(c, &[2, 2, 1]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        dist_ra_hooi(&grid, &x, &c2).rel_error
    });

    for (b, h) in baseline.iter().zip(&healed) {
        let h = h.as_ref().expect("every drop must be healed by a retry");
        assert_eq!(
            b.to_bits(),
            h.to_bits(),
            "retry-healed run drifted from fault-free"
        );
    }
    // The plan actually dropped something — the equality above is only
    // interesting if retries did real work.
    let healed_drops = u
        .traffic()
        .drops_healed
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(healed_drops > 0, "flaky link never fired");
    u.traffic()
        .check_invariant()
        .expect("attempted == delivered + dropped");
}

// ------------------------------------------------------------------ 13

#[test]
fn deadline_expiry_under_dead_slow_rank_falls_back_to_checkpoint() {
    let spec = SyntheticSpec::new(&[12, 10, 8], &[3, 3, 2], 0.01, 913);
    let cfg = RaConfig::ra_hosi_dt(0.1, &[2, 2, 2])
        .with_seed(31)
        .with_alpha(2.0)
        .with_max_iters(3);
    let dir = ckpt_dir("deadline_fallback");

    // Fault-free reference.
    let s = spec.clone();
    let c2 = cfg.clone();
    let reference = Universe::launch(4, move |c| {
        let grid = CartGrid::new(c, &[2, 2, 1]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        let res = dist_ra_hooi(&grid, &x, &c2);
        (res.rel_error, res.tucker.gather(&grid))
    })
    .into_iter()
    .next()
    .unwrap();

    // Rank 1 turns dead-slow (2 s per data-plane op) partway into the
    // first sweep, against a 250 ms per-collective budget; replication
    // is disabled, so once the blame retires the straggler the only
    // clean exit is the disk fallback. The onset keeps the setup
    // collectives (grid construction, ‖X‖²) fault-free — those run
    // outside the resilient driver, exactly like a real job's
    // initialization, and a node degrading mid-run is the gray-failure
    // shape this scenario models.
    let victim = 1usize;
    let plan = FaultPlan::quiet(61)
        .with_slow_rank(victim, Duration::from_secs(2))
        .with_slow_onset(victim, 120);
    let u = Universe::with_fault_plan(4, plan);
    u.set_recv_timeout(Duration::from_secs(120));
    u.set_deadline_policy(Some(DeadlinePolicy::uniform(Duration::from_millis(250))));

    let s = spec.clone();
    let c2 = cfg.clone();
    let policy = CheckpointPolicy::new(&dir).every(1);
    let res_cfg = ResilienceConfig::default()
        .with_buddy_degree(0)
        .with_checkpoint(policy.clone());
    let started = std::time::Instant::now();
    let results = u.try_run(move |c| {
        let grid = CartGrid::new(c, &[2, 2, 1]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        digest(dist_ra_hooi_resilient(&grid, &x, &c2, &res_cfg).unwrap())
    });

    // The blamed straggler is retired and exits as a demoted spare (or
    // surfaces the typed demotion error); every survivor reports a
    // clean fallback naming it dead.
    match &results[victim] {
        Ok(Digest::Spare) => {}
        Ok(other) => panic!("victim must exit as a spare, got {other:?}"),
        Err(f) => assert_typed(f),
    }
    let mut fallbacks = 0;
    for (rank, r) in results.iter().enumerate() {
        if rank == victim {
            continue;
        }
        match r.as_ref().expect("survivors must not panic") {
            Digest::Fallback { dead } => {
                fallbacks += 1;
                assert!(
                    dead.contains(&victim),
                    "dead set {dead:?} must name the straggler"
                );
            }
            Digest::Spare => {}
            Digest::Completed { .. } => {
                panic!("rank {rank}: replication is disabled, recovery cannot be online")
            }
        }
    }
    assert!(
        fallbacks >= 1,
        "at least one survivor must report the fallback"
    );
    // Fail-fast: the 250 ms budget, not the 120 s timeout, bounded the run.
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "deadline fallback took {:?}",
        started.elapsed()
    );

    // RTCK: resume from the surviving checkpoint on a healthy universe
    // and match the fault-free decomposition within 1e-10.
    let s = spec.clone();
    let c2 = cfg.clone();
    let policy = policy.resuming();
    let resumed = Universe::launch(4, move |c| {
        let grid = CartGrid::new(c, &[2, 2, 1]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        let res = dist_ra_hooi_checkpointed(&grid, &x, &c2, &policy);
        (res.rel_error, res.tucker.gather(&grid))
    })
    .into_iter()
    .next()
    .unwrap();
    assert!(
        (resumed.0 - reference.0).abs() <= 1e-10,
        "rel_error diverged after the deadline fallback: {} vs {}",
        resumed.0,
        reference.0
    );
    assert_eq!(resumed.1.ranks(), reference.1.ranks());
    assert!(resumed.1.core.max_abs_diff(&reference.1.core) <= 1e-10);

    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------------------------ 14

#[test]
fn mid_sweep_budget_shrink_engages_ladder_and_converges() {
    let spec = SyntheticSpec::new(&[24, 20, 16], &[6, 6, 4], 0.01, 914);
    let cfg = RaConfig::ra_hosi_dt(0.1, &[3, 3, 2])
        .with_seed(31)
        .with_alpha(2.0)
        .with_max_iters(3);

    // Fault-free reference on the full [2,2,2] grid.
    let s = spec.clone();
    let c2 = cfg.clone();
    let ref_err = Universe::launch(8, move |c| {
        let grid = CartGrid::new(c, &[2, 2, 2]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        dist_ra_hooi(&grid, &x, &c2).rel_error
    })[0];
    assert!(ref_err <= cfg.eps, "reference missed ε: {ref_err}");

    // Rank 3's budget shrinks to 28800 B at fabric op 60: enough for the
    // resident working set but below the rung-0 TTM staging peak of the
    // grown-rank sweeps. Replication is off so the budget bites inside
    // the sweep (far from the sweep-commit boundary), which keeps the
    // recovery deterministic: the refused allocation revokes the data
    // plane, every rank agrees rung 1 on the ctrl plane, and the sweep
    // retries with chunked TTM reductions that fit.
    let plan = FaultPlan::quiet(67).with_mem_pressure(3, 60, 28_800);
    let u = Universe::with_fault_plan(8, plan);
    u.set_recv_timeout(Duration::from_secs(5));
    let s = spec.clone();
    let c2 = cfg.clone();
    let started = std::time::Instant::now();
    let results = u.try_run(move |c| {
        let grid = CartGrid::new(c, &[2, 2, 2]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        let res = ResilienceConfig::default().with_buddy_degree(0);
        digest(dist_ra_hooi_resilient(&grid, &x, &c2, &res).unwrap())
    });

    for (rank, r) in results.iter().enumerate() {
        match r.as_ref().expect("no rank panics under memory pressure") {
            Digest::Completed {
                rel_error,
                final_grid,
                max_rung,
                ..
            } => {
                // The ladder engaged (rung >= 1) and nobody left the grid.
                assert!(
                    *max_rung >= 1,
                    "rank {rank}: pressure must engage the ladder, rung {max_rung}"
                );
                assert_eq!(final_grid, &[2, 2, 2], "no rank may be evicted");
                // Degraded execution changes the working set, not the
                // answer: the P_j = 2 fibers make the chunked reduction
                // order-identical, so the result is bit-equal.
                assert_eq!(
                    rel_error.to_bits(),
                    ref_err.to_bits(),
                    "rank {rank}: degraded run drifted: {rel_error} vs {ref_err}"
                );
                assert!(*rel_error <= cfg.eps, "degraded run missed ε");
            }
            other => panic!("rank {rank}: expected completion on the ladder, got {other:?}"),
        }
    }
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "budget recovery took {:?}",
        started.elapsed()
    );
}

// ------------------------------------------------------------------ 15

#[test]
fn budget_below_checkpoint_floor_falls_back_cleanly() {
    let spec = SyntheticSpec::new(&[24, 20, 16], &[6, 6, 4], 0.01, 915);
    let cfg = RaConfig::ra_hosi_dt(0.1, &[3, 3, 2])
        .with_seed(31)
        .with_alpha(2.0)
        .with_max_iters(3);
    let dir = ckpt_dir("budget_floor");

    // Fault-free reference.
    let s = spec.clone();
    let c2 = cfg.clone();
    let reference = Universe::launch(8, move |c| {
        let grid = CartGrid::new(c, &[2, 2, 2]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        let res = dist_ra_hooi(&grid, &x, &c2);
        (res.rel_error, res.tucker.gather(&grid))
    })
    .into_iter()
    .next()
    .unwrap();

    // 2 KiB is below rank 3's resident block alone: every rung of the
    // ladder still refuses the first allocation of the retried sweep,
    // so the run must climb 1 → 2 → 3, agree the ladder is exhausted,
    // and fall back to the checkpoint cleanly on every rank — no
    // deadlock, no abort, no rank declared dead.
    let s = spec.clone();
    let c2 = cfg.clone();
    let policy = CheckpointPolicy::new(&dir).every(1);
    let res_cfg = ResilienceConfig::default()
        .with_buddy_degree(0)
        .with_checkpoint(policy.clone());
    let plan = FaultPlan::quiet(71).with_mem_pressure(3, 60, 2 << 10);
    let u = Universe::with_fault_plan(8, plan);
    u.set_recv_timeout(Duration::from_secs(5));
    let started = std::time::Instant::now();
    let results = u.try_run(move |c| {
        let grid = CartGrid::new(c, &[2, 2, 2]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        match dist_ra_hooi_resilient(&grid, &x, &c2, &res_cfg).unwrap() {
            ResilientOutcome::FallbackToCheckpoint { dead, reason, .. } => (dead, reason),
            other => panic!("expected checkpoint fallback, got {other:?}"),
        }
    });
    for (rank, r) in results.iter().enumerate() {
        let (dead, reason) = r.as_ref().expect("every rank exits cleanly");
        assert!(dead.is_empty(), "rank {rank}: no rank died: {dead:?}");
        assert!(
            reason.contains("memory budget"),
            "rank {rank}: reason must name the budget: {reason}"
        );
    }
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "budget fallback took {:?}",
        started.elapsed()
    );

    // RTCK: resume from the surviving checkpoint on a healthy universe
    // and match the fault-free decomposition within 1e-10.
    let s = spec.clone();
    let c2 = cfg.clone();
    let policy = policy.resuming();
    let resumed = Universe::launch(8, move |c| {
        let grid = CartGrid::new(c, &[2, 2, 2]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        let res = dist_ra_hooi_checkpointed(&grid, &x, &c2, &policy);
        (res.rel_error, res.tucker.gather(&grid))
    })
    .into_iter()
    .next()
    .unwrap();
    assert!(
        (resumed.0 - reference.0).abs() <= 1e-10,
        "rel_error diverged after the budget fallback: {} vs {}",
        resumed.0,
        reference.0
    );
    assert_eq!(resumed.1.ranks(), reference.1.ranks());
    assert!(resumed.1.core.max_abs_diff(&reference.1.core) <= 1e-10);

    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------------------------ 16

#[test]
fn service_survives_rank_kill_mid_compress_while_queries_keep_flowing() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let dir = ckpt_dir("service_kill");
    let service = Service::start(ServeConfig {
        p: 4,
        query_workers: 2,
        checkpoint_dir: Some(dir.clone()),
        recv_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    });
    let compress = |name: &str, seed: u64| {
        Request::Compress(CompressSpec {
            name: name.into(),
            dims: vec![12, 10, 8],
            construction_ranks: vec![3, 3, 2],
            noise: 0.01,
            seed,
            eps: 0.1,
            initial_ranks: vec![2, 2, 2],
            alpha: 2.0,
            max_iters: 3,
        })
    };

    // Tenant "steady" stores a core fault-free; its queries are the
    // availability probe during the crash.
    let id = service.submit("steady", compress("baseline", 916)).unwrap();
    let (outcome, _) = service.wait(id);
    assert!(
        outcome.is_success(),
        "baseline compress failed: {outcome:?}"
    );

    // Arm a one-shot mid-sweep kill, then compress for tenant "victim"
    // while "steady" hammers queries from another thread.
    service.inject_fault_plan(FaultPlan::quiet(53).with_crash(1, 60));
    let compress_done = AtomicBool::new(false);
    let (victim_outcome, probe_stats) = std::thread::scope(|scope| {
        let service = &service;
        let done = &compress_done;
        let prober = scope.spawn(move || {
            let (mut issued, mut during_crash) = (0usize, 0usize);
            while !done.load(Ordering::SeqCst) {
                let q = service
                    .submit(
                        "steady",
                        Request::Query(QuerySpec {
                            name: "baseline".into(),
                            offsets: vec![2, 1, 0],
                            lens: vec![4, 4, 3],
                        }),
                    )
                    .expect("query submission must stay open during recovery");
                let (outcome, _) = service.wait(q);
                let JobOutcome::Queried { entries, .. } = outcome else {
                    panic!("query failed during mid-compress crash: {outcome:?}");
                };
                assert_eq!(entries, 4 * 4 * 3);
                issued += 1;
                if !done.load(Ordering::SeqCst) {
                    during_crash += 1;
                }
            }
            (issued, during_crash)
        });
        let id = service.submit("victim", compress("wounded", 917)).unwrap();
        let outcome = service.wait(id).0;
        compress_done.store(true, Ordering::SeqCst);
        (outcome, prober.join().expect("prober must not panic"))
    });

    // The victim job completed despite the kill — online or via disk.
    let JobOutcome::Compressed {
        rel_error,
        recovery,
        ..
    } = &victim_outcome
    else {
        panic!("victim job must complete, got {victim_outcome:?}");
    };
    assert!(*rel_error <= 0.1, "victim job missed eps: {rel_error}");
    assert!(
        recovery.recoveries >= 1 || recovery.resumed_from_checkpoint,
        "the kill must have been visible to the recovery stack: {recovery:?}"
    );
    assert!(
        probe_stats.0 >= 1,
        "availability probe never ran ({probe_stats:?})"
    );

    // The one-shot plan must not leak: a warm universe re-arms plan op
    // counters every run, so a fresh compress would crash again if the
    // service failed to clear it.
    let id = service.submit("steady", compress("after", 918)).unwrap();
    let (outcome, _) = service.wait(id);
    let JobOutcome::Compressed { recovery, .. } = &outcome else {
        panic!("post-crash compress failed: {outcome:?}");
    };
    assert_eq!(
        (recovery.recoveries, recovery.resumed_from_checkpoint),
        (0, false),
        "the injected plan leaked into the next job: {recovery:?}"
    );

    assert!(
        service.check_partition(),
        "tenant charges must partition global traffic after recovery"
    );
    let report = service.shutdown();
    assert_eq!(report.failed, 0, "no job may be lost to the injected kill");
    assert_eq!(report.stored_cores, 3);
    assert!(report.partition_ok);
    let _ = std::fs::remove_dir_all(&dir);
}
