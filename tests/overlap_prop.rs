//! Property tests for the comm/compute overlap knob (DESIGN.md §17):
//! the pipelined TTM and Gram kernels must be **bitwise** identical to
//! their blocking forms over tensor orders d ∈ {3, 4} and fiber sizes
//! P ∈ {2, 4, 8}; injected message drops healed by the retry policy
//! must leave the pipelined results bitwise equal to a clean-wire run;
//! and a rank crash landing mid-pipeline — with slab reduce-scatters in
//! flight — must surface on every survivor as a typed [`CommError`],
//! never a hang.

use std::time::Duration;

use proptest::prelude::*;
use ra_hooi::dist::{dist_gram, dist_ttm, DistTensor};
use ra_hooi::mpi::{CartGrid, FaultPlan, RetryPolicy, Universe};
use ra_hooi::prelude::*;
use ra_hooi::tensor::{Matrix, Transpose};

/// A d-way problem whose mode 1 carries the whole processor fiber: the
/// deepest reduce-scatter pipeline the TTM can form at that P.
fn dims_for(d: usize) -> Vec<usize> {
    match d {
        3 => vec![8, 12, 10],
        _ => vec![6, 12, 5, 4],
    }
}

fn grid_for(d: usize, p: usize) -> Vec<usize> {
    let mut g = vec![1; d];
    g[1] = p;
    g
}

/// Runs the mode-1 TTM and Gram on both overlap settings inside one
/// universe run and returns `(pipelined bits, blocking bits)` per rank.
fn both_modes(c: ra_hooi::mpi::Comm, d: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
    let p = c.size();
    let grid = CartGrid::new(c, &grid_for(d, p));
    let dims = dims_for(d);
    let spec = SyntheticSpec::new(&dims, &vec![2; d], 0.05, seed);
    let x = DistTensor::scatter_from_replicated(&grid, &spec.build::<f64>());
    let m = Matrix::from_fn(dims[1], 8, |i, j| {
        (((i * 8 + j) as f64) + seed as f64).sin()
    });
    let run = |mode: OverlapMode| {
        set_overlap(mode);
        let y = dist_ttm(&grid, &x, 1, &m, Transpose::Yes);
        let g = dist_gram(&grid, &x, 1);
        let mut bits: Vec<u64> = y.local().data().iter().map(|v| v.to_bits()).collect();
        bits.extend(g.as_slice().iter().map(|v| v.to_bits()));
        bits
    };
    let out = (run(OverlapMode::On), run(OverlapMode::Off));
    set_overlap(OverlapMode::On);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Pipelined TTM/Gram vs blocking, bitwise, across orders and fiber
    /// sizes.
    #[test]
    fn pipelined_ttm_gram_bitwise_matches_blocking(
        d in 3usize..=4,
        p_idx in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let p = [2usize, 4, 8][p_idx];
        let u = Universe::new(p);
        let out = u.run(move |c| both_modes(c, d, seed));
        for (rank, (on, off)) in out.iter().enumerate() {
            prop_assert_eq!(on, off, "rank {} d={} P={}", rank, d, p);
        }
    }

    /// Message drops healed by the retry policy leave the pipelined
    /// results bitwise identical to a clean-wire pipelined run: the
    /// eager contribution sends retry transparently, and the combine
    /// order never depends on which send needed another attempt.
    #[test]
    fn drops_healed_by_retry_stay_bitwise(
        seed in 0u64..1_000,
        prob_pct in 5u32..=25,
    ) {
        let d = 3usize;
        let p = 4usize;
        let clean = Universe::new(p).run(move |c| both_modes(c, d, seed).0);
        let u = Universe::with_fault_plan(
            p,
            FaultPlan::quiet(seed).with_drops(f64::from(prob_pct) / 100.0),
        );
        u.set_retry_policy(Some(RetryPolicy::new(12)));
        let dropped = u.run(move |c| both_modes(c, d, seed).0);
        for (rank, (a, b)) in clean.iter().zip(&dropped).enumerate() {
            prop_assert_eq!(a, b, "rank {}: healed drops changed the bits", rank);
        }
        u.traffic().check_invariant().unwrap();
    }

    /// A crash landing while slab reduce-scatters are in flight: every
    /// survivor's `try_dist_ttm` returns a typed `CommError` (the test
    /// completing at all is the no-hang assertion; the 10 s timeout is
    /// the backstop).
    #[test]
    fn midpipeline_crash_is_typed_error_not_hang(
        seed in 0u64..1_000,
        crash_op in 30u64..90,
    ) {
        use ra_hooi::dist::try_dist_ttm;

        let d = 3usize;
        let p = 4usize;
        const VICTIM: usize = 2;
        let u = Universe::with_fault_plan(
            p,
            FaultPlan::quiet(seed).with_crash(VICTIM, crash_op),
        );
        u.set_recv_timeout(Duration::from_secs(10));
        let out = u.try_run(move |c| {
            let grid = CartGrid::new(c, &grid_for(d, p));
            let dims = dims_for(d);
            let spec = SyntheticSpec::new(&dims, &vec![2; d], 0.05, seed);
            let x = DistTensor::scatter_from_replicated(&grid, &spec.build::<f64>());
            let m = Matrix::from_fn(dims[1], 8, |i, j| (((i * 8 + j) as f64) * 0.7).cos());
            for _ in 0..200 {
                if let Err(e) = try_dist_ttm(&grid, &x, 1, &m, Transpose::Yes) {
                    // Typed surfacing, not a panic and not a stall.
                    return format!("{e:?}").is_empty() as u64;
                }
            }
            panic!("the injected crash never surfaced in 200 pipelined TTMs");
        });
        for (rank, res) in out.iter().enumerate() {
            if rank == VICTIM {
                prop_assert!(res.is_err(), "the victim must die, not return");
            } else {
                prop_assert_eq!(
                    res.as_ref().ok().copied(),
                    Some(0),
                    "rank {}: survivor did not get a typed CommError",
                    rank
                );
            }
        }
    }
}
