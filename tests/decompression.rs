//! Integration tests for the compression → storage → partial
//! decompression workflow — the use case the paper's introduction
//! motivates ("fast visualization of particular time steps, spatial
//! regions, or quantities of interest").

use ra_hooi::prelude::*;
use ra_hooi::tensor::io;
use ra_hooi::tensor::DenseTensor;

#[test]
fn single_time_step_decompression_matches_original_within_tolerance() {
    // Compress an HCCI-like field to 5% error, then decompress one time
    // step and compare against the same slice of the original.
    let spec = ratucker_datasets::hcci_like(2);
    let x = spec.build::<f64>();
    let eps = 0.05;
    let res = sthosvd(&x, &SthosvdTruncation::RelError(eps));
    assert!(res.rel_error <= eps);

    let time_mode = 3;
    let step = x.dim(time_mode) / 2;
    let slice_hat = res.tucker.reconstruct_slice(time_mode, step);

    // Extract the true slice and compare norms of the difference.
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for idx in slice_hat.shape().indices() {
        let mut gidx = idx.clone();
        gidx[time_mode] = step;
        let d = slice_hat.get(&idx) - x.get(&gidx);
        num += d * d;
        den += x.get(&gidx) * x.get(&gidx);
    }
    let slice_err = (num / den).sqrt();
    // Per-slice error can exceed the global ε but must stay the same
    // order of magnitude for a sane decomposition.
    assert!(slice_err < 5.0 * eps, "slice error {slice_err}");
}

#[test]
fn region_decompression_never_touches_full_reconstruction_cost() {
    // Flop accounting: decompressing a small region must cost far fewer
    // flops than a full reconstruction.
    let spec = SyntheticSpec::new(&[40, 40, 40], &[5, 5, 5], 0.01, 71);
    let x = spec.build::<f32>();
    let res = sthosvd(&x, &SthosvdTruncation::Ranks(vec![5, 5, 5]));

    let (_, full_flops) = ra_hooi::tensor::flops::measure(|| res.tucker.reconstruct());
    let (_, region_flops) =
        ra_hooi::tensor::flops::measure(|| res.tucker.reconstruct_region(&[0, 0, 0], &[4, 4, 4]));
    assert!(
        region_flops * 10 < full_flops,
        "region {region_flops} vs full {full_flops}"
    );
}

#[test]
fn compressed_file_roundtrip_preserves_approximation() {
    // Write the input and the decomposition to disk, reload both, verify
    // the error is unchanged — the archival workflow.
    let dir = std::env::temp_dir();
    let tag = format!("{}", std::process::id());
    let input_path = dir.join(format!("ratucker_decomp_in_{tag}.rtt"));

    let spec = ratucker_datasets::miranda_like(2);
    let x = spec.build::<f32>();
    io::write_rtt(&input_path, &x).unwrap();

    let res = ra_hooi(&x, &RaConfig::ra_hosi_dt(0.05, &[8, 8, 8]).with_seed(3));
    let err_before = res.rel_error;

    // Round-trip the core through the .rtt format.
    let core_path = dir.join(format!("ratucker_decomp_core_{tag}.rtt"));
    io::write_rtt(&core_path, &res.tucker.core).unwrap();
    let core_back: DenseTensor<f32> = io::read_rtt(&core_path).unwrap();
    let x_back: DenseTensor<f32> = io::read_rtt(&input_path).unwrap();

    let rebuilt = TuckerTensor::new(core_back, res.tucker.factors.clone());
    let err_after = rebuilt.reconstruct().rel_error(&x_back);
    assert!(
        (err_after - err_before).abs() < 1e-4,
        "{err_after} vs {err_before}"
    );

    std::fs::remove_file(&input_path).unwrap();
    std::fs::remove_file(&core_path).unwrap();
}

#[test]
fn block_reads_reassemble_the_distributed_input() {
    // Write a raw tensor, then read per-rank blocks exactly as a
    // distributed loader would, and check they tile the original.
    let dir = std::env::temp_dir();
    let path = dir.join(format!("ratucker_blockread_{}.raw", std::process::id()));
    let x = SyntheticSpec::new(&[12, 10, 8], &[2, 2, 2], 0.01, 73).build::<f64>();
    io::write_raw(&path, &x).unwrap();

    let grid = [2usize, 2, 1];
    for c0 in 0..grid[0] {
        for c1 in 0..grid[1] {
            let r0 = ratucker_dist::block_range(12, grid[0], c0);
            let r1 = ratucker_dist::block_range(10, grid[1], c1);
            let block: DenseTensor<f64> = io::read_block_raw(
                &path,
                x.shape(),
                &[r0.offset, r1.offset, 0],
                &[r0.len, r1.len, 8],
            )
            .unwrap();
            for idx in block.shape().indices() {
                let gidx = [idx[0] + r0.offset, idx[1] + r1.offset, idx[2]];
                assert_eq!(block.get(&idx), x.get(&gidx));
            }
        }
    }
    std::fs::remove_file(&path).unwrap();
}
