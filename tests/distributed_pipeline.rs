//! Integration tests of the full distributed pipeline: dataset → grid →
//! distributed algorithm → gathered result, validated against the
//! sequential implementations across processor grids.

use ra_hooi::dist::DistTensor;
use ra_hooi::mpi::{enumerate_grids, CartGrid, Universe};
use ra_hooi::prelude::*;
use ra_hooi::tucker::dist::{dist_hooi, dist_ra_hooi, dist_sthosvd};

#[test]
fn dist_sthosvd_agrees_on_every_grid_of_8() {
    let spec = SyntheticSpec::new(&[12, 10, 8], &[3, 3, 2], 0.02, 401);
    let x_full = spec.build::<f32>();
    let seq = sthosvd(&x_full, &SthosvdTruncation::RelError(0.1));
    for grid_dims in enumerate_grids(8, 3) {
        // Skip grids that oversubscribe small truncated modes.
        if grid_dims
            .iter()
            .zip(&seq.tucker.ranks())
            .any(|(&g, &r)| g > r)
        {
            continue;
        }
        let gd = grid_dims.clone();
        let s = spec.clone();
        let out = Universe::launch(8, move |c| {
            let grid = CartGrid::new(c, &gd);
            let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f32>());
            let res = dist_sthosvd(&grid, &x, &SthosvdTruncation::RelError(0.1));
            (res.rel_error, res.tucker.ranks())
        });
        for (err, ranks) in out {
            assert!(
                (err - seq.rel_error).abs() < 1e-4,
                "grid {grid_dims:?}: {err} vs {}",
                seq.rel_error
            );
            assert_eq!(ranks, seq.tucker.ranks(), "grid {grid_dims:?}");
        }
    }
}

#[test]
fn dist_tucker_reconstruction_matches_sequential() {
    // Gather the distributed result and reconstruct: the decompositions
    // must approximate the input equally well.
    let spec = SyntheticSpec::new(&[10, 10, 10], &[3, 3, 3], 0.05, 403);
    let x_full = spec.build::<f64>();
    let cfg = HooiConfig::hosi_dt().with_max_iters(2).with_seed(7);
    let seq = hooi(&x_full, &[3, 3, 3], &cfg);
    let s = spec.clone();
    let cfg2 = cfg.clone();
    let out = Universe::launch(4, move |c| {
        let grid = CartGrid::new(c, &[2, 2, 1]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f64>());
        let res = dist_hooi(&grid, &x, &[3, 3, 3], &cfg2);
        res.tucker.gather(&grid).reconstruct()
    });
    for rec in out {
        let err = rec.rel_error(&x_full);
        assert!(
            (err - seq.rel_error()).abs() < 1e-6,
            "dist reconstruction err {err} vs seq {}",
            seq.rel_error()
        );
    }
}

#[test]
fn dist_ra_on_dataset_standin_meets_tolerance() {
    // Laptop-scale Miranda stand-in through the distributed RA pipeline.
    let spec = ratucker_datasets::miranda_like(2);
    let eps = 0.1;
    let s = spec.clone();
    let out = Universe::launch(4, move |c| {
        let grid = CartGrid::new(c, &[1, 2, 2]);
        let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f32>());
        let start = vec![6, 6, 6];
        let cfg = RaConfig::ra_hosi_dt(eps, &start)
            .with_seed(5)
            .with_max_iters(3);
        let res = dist_ra_hooi(&grid, &x, &cfg);
        (res.rel_error, res.tucker.ranks())
    });
    for (err, ranks) in out {
        assert!(err <= eps, "tolerance violated: {err} at ranks {ranks:?}");
    }
}

#[test]
fn traffic_shrinks_with_better_grids_for_sthosvd() {
    // §2.1: grids with P1 = 1 avoid the mode-1 redistribution, so they
    // move fewer bytes for STHOSVD. Verify with measured traffic.
    let spec = SyntheticSpec::new(&[16, 16, 16], &[4, 4, 4], 0.02, 405);
    let measure = |grid_dims: Vec<usize>| -> u64 {
        let u = Universe::new(4);
        let s = spec.clone();
        u.run(move |c| {
            let grid = CartGrid::new(c, &grid_dims);
            let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f32>());
            let _ = dist_sthosvd(&grid, &x, &SthosvdTruncation::Ranks(vec![4, 4, 4]));
        });
        u.traffic().snapshot().0
    };
    let p1_split = measure(vec![4, 1, 1]);
    let p1_one = measure(vec![1, 1, 4]);
    assert!(
        p1_one < p1_split,
        "P1=1 grid should move fewer bytes: {p1_one} vs {p1_split}"
    );
}

#[test]
fn dim_tree_moves_fewer_bytes_than_direct_hooi() {
    // Table 2: direct HOOI pays (d−1)·(P1−1) on the first mode; the tree
    // pays (P1−1) + (Pd−1). On a grid splitting only mode 0, the tree
    // must communicate less.
    let spec = SyntheticSpec::new(&[16, 16, 16, 16], &[4, 4, 4, 4], 0.02, 407);
    let measure = |cfg: HooiConfig| -> u64 {
        let u = Universe::new(4);
        let s = spec.clone();
        u.run(move |c| {
            let grid = CartGrid::new(c, &[4, 1, 1, 1]);
            let x = DistTensor::scatter_from_replicated(&grid, &s.build::<f32>());
            let _ = dist_hooi(&grid, &x, &[4, 4, 4, 4], &cfg.clone().with_max_iters(1));
        });
        u.traffic().snapshot().0
    };
    let direct = measure(HooiConfig::hooi());
    let tree = measure(HooiConfig::hooi_dt());
    assert!(
        tree < direct,
        "dimension tree should move fewer bytes: {tree} vs {direct}"
    );
}

#[test]
fn universe_runs_all_five_algorithms_back_to_back() {
    // One universe, all algorithms sequentially — exercises communicator
    // reuse and fabric message isolation between algorithm runs.
    let spec = SyntheticSpec::new(&[8, 8, 8], &[2, 2, 2], 0.01, 409);
    let u = Universe::new(2);
    let errs = u.run(|c| {
        let grid = CartGrid::new(c, &[2, 1, 1]);
        let x = DistTensor::scatter_from_replicated(&grid, &spec.build::<f32>());
        let mut errs = Vec::new();
        errs.push(dist_sthosvd(&grid, &x, &SthosvdTruncation::Ranks(vec![2, 2, 2])).rel_error);
        for cfg in [
            HooiConfig::hooi(),
            HooiConfig::hooi_dt(),
            HooiConfig::hosi(),
            HooiConfig::hosi_dt(),
        ] {
            errs.push(dist_hooi(&grid, &x, &[2, 2, 2], &cfg.with_max_iters(2)).rel_error);
        }
        errs
    });
    for rank_errs in errs {
        for e in rank_errs {
            assert!(e < 0.05, "unexpectedly high error {e}");
        }
    }
}
