//! Workspace property tests for the observability pipeline (PR 3).
//!
//! The central invariant: per-span **exclusive** traffic *partitions*
//! the fabric's traffic counters. With a root span open on every rank,
//! summing the self-attributed per-kind bytes/messages over all
//! recorded spans must reproduce the universe's global counters
//! exactly — per rank, per collective kind, and in total — for
//! arbitrary collective schedules, arbitrary span nesting, and on
//! `CommError` paths under injected message drops (a dropped send is
//! charged to no kind *and* not delivered, so the partition is
//! preserved on both sides of the ledger).

use std::time::Duration;

use proptest::prelude::*;
use ra_hooi::mpi::{Comm, FaultPlan, KindSnapshot, Universe};
use ra_hooi::obs::{span, span_mode, TraceSession};

/// Runs a deterministic pseudo-random schedule of collectives on `c`,
/// under nested spans, ignoring (typed) communication errors. Returns
/// the number of collectives that failed.
fn random_collectives(c: &Comm, seed: u64, rounds: usize) -> usize {
    let mut failures = 0;
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..rounds {
        let n = (next() % 64 + 1) as usize;
        let data: Vec<f64> = (0..n).map(|i| (i + round) as f64).collect();
        // Each collective runs under its own (sometimes nested) span.
        let _outer = span_mode(c, "TTM", round % 3);
        match next() % 5 {
            0 => {
                let _s = span(c, "Gram");
                if c.try_allreduce(data, |a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += *y;
                    }
                })
                .is_err()
                {
                    failures += 1;
                }
            }
            1 => {
                let _s = span(c, "SI");
                if c.try_bcast(0, data).is_err() {
                    failures += 1;
                }
            }
            2 => {
                if c.try_allgatherv(data).is_err() {
                    failures += 1;
                }
            }
            3 => {
                let _s = span(c, "QR");
                // Spread n entries over the ranks (first rank absorbs
                // the remainder).
                let p = c.size();
                let mut counts = vec![n / p; p];
                counts[0] += n % p;
                if c.try_reduce_scatter(data, &counts, |a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += *y;
                    }
                })
                .is_err()
                {
                    failures += 1;
                }
            }
            _ => {
                if c.try_barrier().is_err() {
                    failures += 1;
                }
            }
        }
    }
    failures
}

/// Asserts the partition: trace self-traffic == fabric counters, per
/// rank, per kind, and globally.
fn assert_partition(trace: &ra_hooi::obs::Trace, u: &Universe, p: usize) {
    assert_eq!(trace.evicted, 0, "ring evictions void the partition");
    // Global, per kind.
    let measured = trace.totals();
    let fabric = u.traffic().kind_totals();
    assert_eq!(measured.bytes, fabric.bytes, "per-kind byte partition");
    assert_eq!(
        measured.messages, fabric.messages,
        "per-kind message partition"
    );
    // Global totals against the legacy counters.
    let (bytes, msgs) = u.traffic().snapshot();
    assert_eq!(measured.total_bytes(), bytes);
    assert_eq!(measured.total_messages(), msgs);
    // Per rank, per kind.
    for r in 0..p {
        let mut rank_sum = KindSnapshot::default();
        for e in trace.events_of_rank(r) {
            rank_sum.merge(&e.traffic);
        }
        let want = u.traffic().kind_snapshot_for(r);
        assert_eq!(rank_sum.bytes, want.bytes, "rank {r} byte partition");
        assert_eq!(
            rank_sum.messages, want.messages,
            "rank {r} message partition"
        );
    }
    // The fabric's own internal partition must also hold.
    u.traffic().check_kind_partition().unwrap();
    u.traffic().check_invariant().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Fault-free random collective schedules: span self-traffic
    /// partitions the fabric counters exactly, and every rank records
    /// at least its root span.
    #[test]
    fn span_traffic_partitions_fabric_counters(
        p in 2usize..=4,
        seed in 0u64..10_000,
        rounds in 1usize..=6,
    ) {
        let session = TraceSession::start();
        let u = Universe::new(p);
        let failures = u.run(|c| {
            let _root = span(&c, "run");
            // Same seed on every rank: collectives are a matched
            // schedule across the communicator.
            random_collectives(&c, seed, rounds)
        });
        let trace = session.finish();
        prop_assert!(failures.iter().all(|&f| f == 0), "fault-free run failed");
        for r in 0..p {
            prop_assert!(
                trace.events_of_rank(r).any(|e| e.phase == "run" && e.depth == 0),
                "rank {r} missing root span"
            );
        }
        assert_partition(&trace, &u, p);
    }

    /// `Timings::percents` apportions by largest remainder: the row
    /// sums to exactly 100 whenever any time was recorded, every phase
    /// gets its floored share or one point more, and all-zero timings
    /// yield all zeros.
    #[test]
    fn timings_percents_apportion_by_largest_remainder(
        raw in proptest::collection::vec(0u32..1_000, 8),
    ) {
        use ra_hooi::tucker::{Timings, ALL_PHASES};
        let mut t = Timings::new();
        for (&phase, &units) in ALL_PHASES.iter().zip(&raw) {
            // Dyadic fractions, so shares are computed from exact sums.
            t.record(phase, f64::from(units) / 1024.0);
        }
        let out = t.percents();
        let total: f64 = raw.iter().map(|&u| f64::from(u) / 1024.0).sum();
        if total <= 0.0 {
            prop_assert_eq!(out, [0u32; 8]);
        } else {
            prop_assert_eq!(out.iter().sum::<u32>(), 100, "row must sum to 100");
            for (i, (&units, &got)) in raw.iter().zip(&out).enumerate() {
                let share = f64::from(units) / 1024.0 / total * 100.0;
                let fl = share.floor() as u32;
                prop_assert!(
                    got == fl || got == fl + 1,
                    "phase {i}: {got} not in {{floor, floor+1}} of {share}"
                );
            }
        }
    }

    /// Drops healed by retry-with-backoff keep the traffic ledger
    /// partitioned: every attempt lands on exactly one of `messages` or
    /// `dropped`, each healed drop consumed at least one retry, and the
    /// collectives themselves succeed as if the wire were clean.
    #[test]
    fn retry_counters_stay_partitioned_under_drops(
        seed in 0u64..10_000,
        rounds in 1usize..=3,
        prob_pct in 5u32..=30,
    ) {
        use std::sync::atomic::Ordering;
        use ra_hooi::mpi::RetryPolicy;
        let p = 2usize;
        let u = Universe::with_fault_plan(
            p,
            FaultPlan::quiet(seed).with_drops(f64::from(prob_pct) / 100.0),
        );
        u.set_retry_policy(Some(RetryPolicy::new(12)));
        let failures = u.run(|c| random_collectives(&c, seed, rounds));
        // At ≤30% drop probability and 12 retries, exhaustion is a
        // ~0.3¹³ event per message: the run must come back clean.
        prop_assert!(failures.iter().all(|&f| f == 0), "retry failed to heal");
        u.traffic().check_invariant().unwrap();
        let stats = u.traffic();
        let dropped = stats.dropped.load(Ordering::Relaxed);
        let healed = stats.drops_healed.load(Ordering::Relaxed);
        let retries = stats.send_retries.load(Ordering::Relaxed);
        prop_assert_eq!(healed, dropped.min(healed), "healed ≤ dropped");
        prop_assert!(retries >= healed, "each heal consumed ≥ 1 retry");
        prop_assert!(healed >= u64::from(dropped > 0), "a clean run has no unhealed drops");
    }

    /// Injected message drops: collectives fail with typed errors, yet
    /// the partition still holds — dropped sends are charged to no kind
    /// and to no global counter, delivered legs to exactly one of each.
    #[test]
    fn partition_survives_comm_errors(
        seed in 0u64..10_000,
        rounds in 1usize..=3,
    ) {
        let p = 2usize;
        let session = TraceSession::start();
        let u = Universe::with_fault_plan(
            p,
            FaultPlan::quiet(seed).with_drops(1.0),
        );
        u.set_recv_timeout(Duration::from_millis(100));
        let failures = u.run(|c| {
            let _root = span(&c, "run");
            // Same seed on every rank: collectives are a matched
            // schedule across the communicator.
            random_collectives(&c, seed, rounds)
        });
        let trace = session.finish();
        // With every send dropped, at least one rank must observe a
        // typed failure (barriers/bcasts/reduces all need the wire when
        // p > 1).
        prop_assert!(failures.iter().sum::<usize>() > 0, "drops went unnoticed");
        // Dropped messages are on the attempted ledger, not the
        // delivered one.
        prop_assert!(u.traffic().dropped.load(std::sync::atomic::Ordering::Relaxed) > 0);
        assert_partition(&trace, &u, p);
    }
}

/// Sessions are disjoint: spans recorded outside any session are
/// dropped, so a traced run's totals reflect that run only.
#[test]
fn sessions_isolate_their_traffic() {
    let p = 2usize;
    // Un-traced warm-up universe: nothing from here may leak into the
    // session below.
    let u0 = Universe::new(p);
    u0.run(|c| {
        let _ = c.try_allreduce(vec![1.0f64; 8], |a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += *y;
            }
        });
    });

    let session = TraceSession::start();
    let u = Universe::new(p);
    u.run(|c| {
        let _root = span(&c, "run");
        let _ = c.try_allreduce(vec![1.0f64; 8], |a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += *y;
            }
        });
    });
    let trace = session.finish();
    assert_partition(&trace, &u, p);
    assert!(trace.totals().total_bytes() > 0);
}
