//! Workspace-level property tests: algorithm invariants that must hold
//! for arbitrary (small) problems.

use proptest::prelude::*;
use ra_hooi::prelude::*;
use ra_hooi::tucker::analyze_core;

/// Strategy: (dims, true ranks, noise, seed) for a small synthetic
/// problem with ranks strictly below the dims.
fn arb_problem() -> impl Strategy<Value = (Vec<usize>, Vec<usize>, f64, u64)> {
    (2usize..=4)
        .prop_flat_map(|d| {
            (
                prop::collection::vec(6usize..=10, d..=d),
                prop::collection::vec(2usize..=3, d..=d),
            )
        })
        .prop_flat_map(|(dims, ranks)| (Just(dims), Just(ranks), 0.0f64..0.2, 0u64..10_000))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// STHOSVD at the true ranks always achieves error ≈ the noise floor
    /// (quasi-optimality) and orthonormal factors.
    #[test]
    fn sthosvd_quasi_optimal((dims, ranks, noise, seed) in arb_problem()) {
        let x = SyntheticSpec::new(&dims, &ranks, noise, seed).build::<f64>();
        let res = sthosvd(&x, &SthosvdTruncation::Ranks(ranks.clone()));
        prop_assert!(res.tucker.orthonormality_defect() < 1e-8);
        // Error cannot beat the noise floor nor exceed it by much
        // (noise has some component inside the kept subspace).
        prop_assert!(res.rel_error <= noise + 1e-7, "err {} noise {noise}", res.rel_error);
    }

    /// HOOI's per-sweep error is monotone non-increasing (block
    /// coordinate descent), for every variant.
    #[test]
    fn hooi_error_monotone((dims, ranks, noise, seed) in arb_problem()) {
        let x = SyntheticSpec::new(&dims, &ranks, noise, seed).build::<f64>();
        for cfg in [HooiConfig::hooi(), HooiConfig::hosi_dt()] {
            let res = hooi(&x, &ranks, &cfg.with_max_iters(3).with_seed(seed));
            for w in res.sweeps.windows(2) {
                prop_assert!(
                    w[1].rel_error <= w[0].rel_error + 1e-8,
                    "{} -> {}",
                    w[0].rel_error,
                    w[1].rel_error
                );
            }
        }
    }

    /// Rank-adaptive HOOI either meets the tolerance or runs out of
    /// iterations with ranks strictly grown toward the dims; when it
    /// meets, the result satisfies the tolerance.
    #[test]
    fn ra_meets_or_grows((dims, ranks, noise, seed) in arb_problem()) {
        let x = SyntheticSpec::new(&dims, &ranks, noise, seed).build::<f64>();
        let eps = (noise * 2.0).max(0.05);
        let cfg = RaConfig {
            eps,
            alpha: 2.0,
            initial_ranks: vec![1; dims.len()],
            max_iters: 4,
            stop_on_threshold: true,
            inner: HooiConfig::hosi_dt().with_seed(seed),
        };
        let res = ra_hooi(&x, &cfg);
        match res.met_at {
            Some(_) => prop_assert!(res.rel_error <= eps + 1e-12),
            None => {
                let last = res.iterations.last().unwrap();
                prop_assert!(
                    last.ranks_out.iter().zip(&dims).all(|(&r, &n)| r <= n)
                );
                // Must have grown beyond the start.
                prop_assert!(last.ranks_out.iter().any(|&r| r > 1));
            }
        }
    }

    /// The core-analysis result is always feasible and never larger than
    /// the untruncated decomposition.
    #[test]
    fn core_analysis_feasible_and_no_worse(
        dims in prop::collection::vec(2usize..=4, 2..=3),
        seed in 0u64..1000,
        eps in 0.05f64..0.5,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let core: ra_hooi::tensor::DenseTensor<f64> =
            ra_hooi::tensor::random::normal_tensor(ra_hooi::tensor::Shape::new(&dims), &mut rng);
        let xns = core.squared_norm_f64() * 1.0001;
        let outer: Vec<usize> = dims.iter().map(|&r| r * 10).collect();
        if let Some(a) = analyze_core(&core, &outer, xns, eps) {
            let target = (1.0 - eps * eps) * xns;
            prop_assert!(a.kept_norm_sq >= target);
            let full_storage = ra_hooi::tucker::tucker_storage(&dims, &outer);
            prop_assert!(a.storage <= full_storage);
            prop_assert!(a.ranks.iter().zip(&dims).all(|(&r, &d)| r >= 1 && r <= d));
        }
    }

    /// Reconstructing any algorithm's Tucker output and re-compressing it
    /// at the same ranks is idempotent in error (the output is a fixed
    /// point up to round-off).
    #[test]
    fn recompression_is_stable((dims, ranks, noise, seed) in arb_problem()) {
        let x = SyntheticSpec::new(&dims, &ranks, noise, seed).build::<f64>();
        let first = sthosvd(&x, &SthosvdTruncation::Ranks(ranks.clone()));
        let x_hat = first.tucker.reconstruct();
        let second = sthosvd(&x_hat, &SthosvdTruncation::Ranks(ranks.clone()));
        prop_assert!(second.rel_error < 1e-7, "recompression error {}", second.rel_error);
    }
}
