//! Conformance suite: every distributed solver, swept over tensor
//! orders d ∈ {3, 4} and processor counts P ∈ {1, 2, 4, 8}, against
//! the sequential implementation as a differential oracle — within the
//! documented tolerances of `ratucker_verify::tolerances` — plus the
//! algebraic invariants any correct output must satisfy.
//!
//! Three comparison layers per case:
//!
//! 1. **cross-rank**: every rank's gathered result is *bitwise*
//!    identical (the collectives are replicated-deterministic);
//! 2. **distributed vs. sequential**: relative error within
//!    `TOL_DIST_REL_ERROR`, ranks equal, factor columns within
//!    `TOL_DIST_FACTOR` up to sign;
//! 3. **invariants**: orthonormal factors and the core-norm error
//!    identity on the gathered decomposition.

use ra_hooi::dist::DistTensor;
use ra_hooi::mpi::{CartGrid, Universe};
use ra_hooi::prelude::*;
use ra_hooi::tucker::dist::{dist_ra_hooi, dist_sthosvd};
use ra_hooi::tucker::{dist_ra_hooi_resilient, ResilienceConfig, ResilientOutcome};
use ratucker_verify::tolerances::{
    TOL_CORE_NORM, TOL_DIST_FACTOR, TOL_DIST_REL_ERROR, TOL_MONOTONE_SLACK, TOL_ORTHO,
};
use ratucker_verify::{
    check_core_norm_identity, check_factor_match, check_monotone_fit, check_orthonormal,
};

struct Case {
    dims: Vec<usize>,
    ranks: Vec<usize>,
    seed: u64,
    /// One grid per processor count in {1, 2, 4, 8}.
    grids: Vec<Vec<usize>>,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            dims: vec![10, 9, 8],
            ranks: vec![3, 3, 2],
            seed: 331,
            grids: vec![vec![1, 1, 1], vec![2, 1, 1], vec![2, 2, 1], vec![2, 2, 2]],
        },
        Case {
            dims: vec![8, 7, 6, 5],
            ranks: vec![2, 2, 2, 2],
            seed: 332,
            grids: vec![
                vec![1, 1, 1, 1],
                vec![2, 1, 1, 1],
                vec![2, 2, 1, 1],
                vec![2, 2, 2, 1],
            ],
        },
    ]
}

/// Gathered results from each rank must agree bit-for-bit.
fn assert_bitwise_equal_across_ranks(results: &[(f64, TuckerTensor<f64>)], ctx: &str) {
    let (err0, t0) = &results[0];
    for (rank, (err, t)) in results.iter().enumerate().skip(1) {
        assert_eq!(
            err.to_bits(),
            err0.to_bits(),
            "{ctx}: rank {rank} rel_error differs from rank 0"
        );
        for (j, (f, f0)) in t.factors.iter().zip(&t0.factors).enumerate() {
            let same = f
                .as_slice()
                .iter()
                .zip(f0.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "{ctx}: rank {rank} factor {j} differs from rank 0");
        }
        let same = t
            .core
            .data()
            .iter()
            .zip(t0.core.data())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "{ctx}: rank {rank} core differs from rank 0");
    }
}

fn assert_invariants(x: &DenseTensor<f64>, t: &TuckerTensor<f64>, reported: f64, ctx: &str) {
    for (j, f) in t.factors.iter().enumerate() {
        check_orthonormal(f, TOL_ORTHO).unwrap_or_else(|e| panic!("{ctx}: factor {j}: {e}"));
    }
    check_core_norm_identity(x, &t.core, &t.factors, reported, TOL_CORE_NORM)
        .unwrap_or_else(|e| panic!("{ctx}: {e}"));
}

#[test]
fn sthosvd_conforms_to_the_sequential_oracle_on_every_grid() {
    for case in cases() {
        let x = SyntheticSpec::new(&case.dims, &case.ranks, 0.02, case.seed).build::<f64>();
        let seq = sthosvd(&x, &SthosvdTruncation::Ranks(case.ranks.clone()));
        assert_invariants(&x, &seq.tucker, seq.rel_error, "sequential STHOSVD");

        for grid_dims in &case.grids {
            let p: usize = grid_dims.iter().product();
            let ctx = format!("STHOSVD d={} P={p} grid {grid_dims:?}", case.dims.len());
            let gd = grid_dims.clone();
            let ranks = case.ranks.clone();
            let xg = x.clone();
            let out = Universe::launch(p, move |c| {
                let grid = CartGrid::new(c, &gd);
                let xd = DistTensor::scatter_from_replicated(&grid, &xg);
                let res = dist_sthosvd(&grid, &xd, &SthosvdTruncation::Ranks(ranks.clone()));
                (res.rel_error, res.tucker.gather(&grid))
            });
            assert_bitwise_equal_across_ranks(&out, &ctx);
            let (err, t) = &out[0];
            assert!(
                (err - seq.rel_error).abs() < TOL_DIST_REL_ERROR,
                "{ctx}: rel_error {err} vs sequential {}",
                seq.rel_error
            );
            assert_eq!(t.ranks(), seq.tucker.ranks(), "{ctx}: ranks differ");
            for (j, (fd, fs)) in t.factors.iter().zip(&seq.tucker.factors).enumerate() {
                check_factor_match(fd, fs, TOL_DIST_FACTOR)
                    .unwrap_or_else(|e| panic!("{ctx}: factor {j}: {e}"));
            }
            assert_invariants(&x, t, *err, &ctx);
        }
    }
}

#[test]
fn ra_hosi_dt_conforms_to_the_sequential_oracle_on_every_grid() {
    let eps = 0.05;
    for case in cases() {
        let x = SyntheticSpec::new(&case.dims, &case.ranks, 0.01, case.seed).build::<f64>();
        // Every mode's rank must stay ≥ the largest grid dimension the
        // sweep uses (a core mode smaller than the grid leaves empty
        // ranks), so the initial guess starts at 2, not 1.
        let guess = vec![2; case.dims.len()];
        let cfg = RaConfig::ra_hosi_dt(eps, &guess).with_seed(9);
        let seq = ra_hooi(&x, &cfg);
        assert!(seq.rel_error <= eps, "sequential RA missed its tolerance");
        assert_invariants(&x, &seq.tucker, seq.rel_error, "sequential RA-HOSI-DT");

        for grid_dims in &case.grids {
            let p: usize = grid_dims.iter().product();
            let ctx = format!("RA-HOSI-DT d={} P={p} grid {grid_dims:?}", case.dims.len());
            let gd = grid_dims.clone();
            let cfg2 = cfg.clone();
            let xg = x.clone();
            let out = Universe::launch(p, move |c| {
                let grid = CartGrid::new(c, &gd);
                let xd = DistTensor::scatter_from_replicated(&grid, &xg);
                let res = dist_ra_hooi(&grid, &xd, &cfg2);
                (res.rel_error, res.tucker.gather(&grid))
            });
            assert_bitwise_equal_across_ranks(&out, &ctx);
            let (err, t) = &out[0];
            assert!(*err <= eps, "{ctx}: tolerance missed: {err}");
            assert!(
                (err - seq.rel_error).abs() < TOL_DIST_REL_ERROR,
                "{ctx}: rel_error {err} vs sequential {}",
                seq.rel_error
            );
            assert_eq!(t.ranks(), seq.tucker.ranks(), "{ctx}: adapted ranks differ");
            for (j, (fd, fs)) in t.factors.iter().zip(&seq.tucker.factors).enumerate() {
                check_factor_match(fd, fs, TOL_DIST_FACTOR)
                    .unwrap_or_else(|e| panic!("{ctx}: factor {j}: {e}"));
            }
            assert_invariants(&x, t, *err, &ctx);
        }
    }
}

#[test]
fn hooi_fit_is_monotone_and_matches_its_invariants() {
    for case in cases() {
        let x = SyntheticSpec::new(&case.dims, &case.ranks, 0.02, case.seed).build::<f64>();
        for cfg in [HooiConfig::hooi(), HooiConfig::hosi_dt()] {
            let res = hooi(&x, &case.ranks, &cfg.with_max_iters(4).with_seed(3));
            let errors: Vec<f64> = res.sweeps.iter().map(|s| s.rel_error).collect();
            check_monotone_fit(&errors, TOL_MONOTONE_SLACK)
                .unwrap_or_else(|e| panic!("d={}: {e}", case.dims.len()));
            assert_invariants(&x, &res.tucker, res.rel_error(), "fixed-rank HOOI");
        }
    }
}

#[test]
fn fault_free_resilient_solver_conforms_to_the_plain_distributed_run() {
    let case = &cases()[0];
    let x = SyntheticSpec::new(&case.dims, &case.ranks, 0.01, case.seed).build::<f64>();
    let guess = vec![2; case.dims.len()];
    let cfg = RaConfig::ra_hosi_dt(0.05, &guess).with_seed(9);

    let cfg2 = cfg.clone();
    let xg = x.clone();
    let plain = Universe::launch(4, move |c| {
        let grid = CartGrid::new(c, &[2, 2, 1]);
        let xd = DistTensor::scatter_from_replicated(&grid, &xg);
        dist_ra_hooi(&grid, &xd, &cfg2).rel_error
    });

    let cfg2 = cfg.clone();
    let xg = x.clone();
    let resilient = Universe::launch(4, move |c| {
        let grid = CartGrid::new(c, &[2, 2, 1]);
        let xd = DistTensor::scatter_from_replicated(&grid, &xg);
        let out = dist_ra_hooi_resilient(&grid, &xd, &cfg2, &ResilienceConfig::default())
            .expect("fault-free resilient run succeeds");
        match out {
            ResilientOutcome::Completed { result, report, .. } => {
                assert_eq!(report.recoveries, 0, "fault-free run took a recovery");
                result.rel_error
            }
            other => panic!("fault-free run did not complete: {other:?}"),
        }
    });

    for (rank, (a, b)) in plain.iter().zip(&resilient).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "rank {rank}: resilient path diverged fault-free: {a} vs {b}"
        );
    }
}
