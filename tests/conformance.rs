//! Conformance suite: every distributed solver, swept over tensor
//! orders d ∈ {3, 4} and processor counts P ∈ {1, 2, 4, 8}, against
//! the sequential implementation as a differential oracle — within the
//! documented tolerances of `ratucker_verify::tolerances` — plus the
//! algebraic invariants any correct output must satisfy.
//!
//! Three comparison layers per case:
//!
//! 1. **cross-rank**: every rank's gathered result is *bitwise*
//!    identical (the collectives are replicated-deterministic);
//! 2. **distributed vs. sequential**: relative error within
//!    `TOL_DIST_REL_ERROR`, ranks equal, factor columns within
//!    `TOL_DIST_FACTOR` up to sign;
//! 3. **invariants**: orthonormal factors and the core-norm error
//!    identity on the gathered decomposition.

use ra_hooi::dist::DistTensor;
use ra_hooi::mpi::{CartGrid, Universe};
use ra_hooi::prelude::*;
use ra_hooi::tucker::dist::{dist_ra_hooi, dist_sthosvd};
use ra_hooi::tucker::{dist_ra_hooi_resilient, ResilienceConfig, ResilientOutcome};
use ratucker_verify::tolerances::{
    TOL_CORE_NORM, TOL_DIST_FACTOR, TOL_DIST_REL_ERROR, TOL_MONOTONE_SLACK, TOL_ORTHO,
};
use ratucker_verify::{
    check_core_norm_identity, check_factor_match, check_monotone_fit, check_orthonormal,
};

struct Case {
    dims: Vec<usize>,
    ranks: Vec<usize>,
    seed: u64,
    /// One grid per processor count in {1, 2, 4, 8}.
    grids: Vec<Vec<usize>>,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            dims: vec![10, 9, 8],
            ranks: vec![3, 3, 2],
            seed: 331,
            grids: vec![vec![1, 1, 1], vec![2, 1, 1], vec![2, 2, 1], vec![2, 2, 2]],
        },
        Case {
            dims: vec![8, 7, 6, 5],
            ranks: vec![2, 2, 2, 2],
            seed: 332,
            grids: vec![
                vec![1, 1, 1, 1],
                vec![2, 1, 1, 1],
                vec![2, 2, 1, 1],
                vec![2, 2, 2, 1],
            ],
        },
    ]
}

/// Gathered results from each rank must agree bit-for-bit.
fn assert_bitwise_equal_across_ranks(results: &[(f64, TuckerTensor<f64>)], ctx: &str) {
    let (err0, t0) = &results[0];
    for (rank, (err, t)) in results.iter().enumerate().skip(1) {
        assert_eq!(
            err.to_bits(),
            err0.to_bits(),
            "{ctx}: rank {rank} rel_error differs from rank 0"
        );
        for (j, (f, f0)) in t.factors.iter().zip(&t0.factors).enumerate() {
            let same = f
                .as_slice()
                .iter()
                .zip(f0.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "{ctx}: rank {rank} factor {j} differs from rank 0");
        }
        let same = t
            .core
            .data()
            .iter()
            .zip(t0.core.data())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "{ctx}: rank {rank} core differs from rank 0");
    }
}

fn assert_invariants(x: &DenseTensor<f64>, t: &TuckerTensor<f64>, reported: f64, ctx: &str) {
    for (j, f) in t.factors.iter().enumerate() {
        check_orthonormal(f, TOL_ORTHO).unwrap_or_else(|e| panic!("{ctx}: factor {j}: {e}"));
    }
    check_core_norm_identity(x, &t.core, &t.factors, reported, TOL_CORE_NORM)
        .unwrap_or_else(|e| panic!("{ctx}: {e}"));
}

#[test]
fn sthosvd_conforms_to_the_sequential_oracle_on_every_grid() {
    for case in cases() {
        let x = SyntheticSpec::new(&case.dims, &case.ranks, 0.02, case.seed).build::<f64>();
        let seq = sthosvd(&x, &SthosvdTruncation::Ranks(case.ranks.clone()));
        assert_invariants(&x, &seq.tucker, seq.rel_error, "sequential STHOSVD");

        for grid_dims in &case.grids {
            let p: usize = grid_dims.iter().product();
            let ctx = format!("STHOSVD d={} P={p} grid {grid_dims:?}", case.dims.len());
            let gd = grid_dims.clone();
            let ranks = case.ranks.clone();
            let xg = x.clone();
            let out = Universe::launch(p, move |c| {
                let grid = CartGrid::new(c, &gd);
                let xd = DistTensor::scatter_from_replicated(&grid, &xg);
                let res = dist_sthosvd(&grid, &xd, &SthosvdTruncation::Ranks(ranks.clone()));
                (res.rel_error, res.tucker.gather(&grid))
            });
            assert_bitwise_equal_across_ranks(&out, &ctx);
            let (err, t) = &out[0];
            assert!(
                (err - seq.rel_error).abs() < TOL_DIST_REL_ERROR,
                "{ctx}: rel_error {err} vs sequential {}",
                seq.rel_error
            );
            assert_eq!(t.ranks(), seq.tucker.ranks(), "{ctx}: ranks differ");
            for (j, (fd, fs)) in t.factors.iter().zip(&seq.tucker.factors).enumerate() {
                check_factor_match(fd, fs, TOL_DIST_FACTOR)
                    .unwrap_or_else(|e| panic!("{ctx}: factor {j}: {e}"));
            }
            assert_invariants(&x, t, *err, &ctx);
        }
    }
}

#[test]
fn ra_hosi_dt_conforms_to_the_sequential_oracle_on_every_grid() {
    let eps = 0.05;
    for case in cases() {
        let x = SyntheticSpec::new(&case.dims, &case.ranks, 0.01, case.seed).build::<f64>();
        // Every mode's rank must stay ≥ the largest grid dimension the
        // sweep uses (a core mode smaller than the grid leaves empty
        // ranks), so the initial guess starts at 2, not 1.
        let guess = vec![2; case.dims.len()];
        let cfg = RaConfig::ra_hosi_dt(eps, &guess).with_seed(9);
        let seq = ra_hooi(&x, &cfg);
        assert!(seq.rel_error <= eps, "sequential RA missed its tolerance");
        assert_invariants(&x, &seq.tucker, seq.rel_error, "sequential RA-HOSI-DT");

        for grid_dims in &case.grids {
            let p: usize = grid_dims.iter().product();
            let ctx = format!("RA-HOSI-DT d={} P={p} grid {grid_dims:?}", case.dims.len());
            let gd = grid_dims.clone();
            let cfg2 = cfg.clone();
            let xg = x.clone();
            let out = Universe::launch(p, move |c| {
                let grid = CartGrid::new(c, &gd);
                let xd = DistTensor::scatter_from_replicated(&grid, &xg);
                let res = dist_ra_hooi(&grid, &xd, &cfg2);
                (res.rel_error, res.tucker.gather(&grid))
            });
            assert_bitwise_equal_across_ranks(&out, &ctx);
            let (err, t) = &out[0];
            assert!(*err <= eps, "{ctx}: tolerance missed: {err}");
            assert!(
                (err - seq.rel_error).abs() < TOL_DIST_REL_ERROR,
                "{ctx}: rel_error {err} vs sequential {}",
                seq.rel_error
            );
            assert_eq!(t.ranks(), seq.tucker.ranks(), "{ctx}: adapted ranks differ");
            for (j, (fd, fs)) in t.factors.iter().zip(&seq.tucker.factors).enumerate() {
                check_factor_match(fd, fs, TOL_DIST_FACTOR)
                    .unwrap_or_else(|e| panic!("{ctx}: factor {j}: {e}"));
            }
            assert_invariants(&x, t, *err, &ctx);
        }
    }
}

#[test]
fn hooi_fit_is_monotone_and_matches_its_invariants() {
    for case in cases() {
        let x = SyntheticSpec::new(&case.dims, &case.ranks, 0.02, case.seed).build::<f64>();
        for cfg in [HooiConfig::hooi(), HooiConfig::hosi_dt()] {
            let res = hooi(&x, &case.ranks, &cfg.with_max_iters(4).with_seed(3));
            let errors: Vec<f64> = res.sweeps.iter().map(|s| s.rel_error).collect();
            check_monotone_fit(&errors, TOL_MONOTONE_SLACK)
                .unwrap_or_else(|e| panic!("d={}: {e}", case.dims.len()));
            assert_invariants(&x, &res.tucker, res.rel_error(), "fixed-rank HOOI");
        }
    }
}

/// `Overlap on` (the default) vs the blocking oracles, over the whole
/// conformance matrix: same universe, same schedule, both paths run
/// back-to-back on every rank — the gathered decompositions must match
/// byte for byte (DESIGN.md §17's determinism contract, checked at the
/// solver level rather than the kernel level).
#[test]
fn overlap_on_is_bitwise_identical_to_blocking_on_every_grid() {
    for case in cases() {
        let x = SyntheticSpec::new(&case.dims, &case.ranks, 0.02, case.seed).build::<f64>();
        for grid_dims in &case.grids {
            let p: usize = grid_dims.iter().product();
            let ctx = format!("overlap d={} P={p} grid {grid_dims:?}", case.dims.len());
            let gd = grid_dims.clone();
            let ranks = case.ranks.clone();
            let xg = x.clone();
            let out = Universe::launch(p, move |c| {
                let grid = CartGrid::new(c, &gd);
                let xd = DistTensor::scatter_from_replicated(&grid, &xg);
                set_overlap(OverlapMode::On);
                let on = dist_sthosvd(&grid, &xd, &SthosvdTruncation::Ranks(ranks.clone()));
                set_overlap(OverlapMode::Off);
                let off = dist_sthosvd(&grid, &xd, &SthosvdTruncation::Ranks(ranks.clone()));
                set_overlap(OverlapMode::On);
                (
                    (on.rel_error, on.tucker.gather(&grid)),
                    (off.rel_error, off.tucker.gather(&grid)),
                )
            });
            for (rank, (on, off)) in out.iter().enumerate() {
                let rctx = format!("{ctx} rank {rank}");
                assert_eq!(on.0.to_bits(), off.0.to_bits(), "{rctx}: rel_error");
                for (j, (fa, fb)) in on.1.factors.iter().zip(&off.1.factors).enumerate() {
                    let same = fa
                        .as_slice()
                        .iter()
                        .zip(fb.as_slice())
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                    assert!(same, "{rctx}: factor {j} differs between overlap modes");
                }
                let same =
                    on.1.core
                        .data()
                        .iter()
                        .zip(off.1.core.data())
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "{rctx}: core differs between overlap modes");
            }
        }
    }
}

/// The ci smoke: P = 4 HOSI-DT HOOI with the mode-1 fiber spanning all
/// four ranks (the deepest reduce-scatter pipeline), pipelined vs
/// blocking, byte-compared. Small enough for the ci stall guard.
#[test]
fn p4_pipelined_hooi_matches_blocking_smoke() {
    use ra_hooi::tucker::dist::dist_hooi;

    let x = SyntheticSpec::new(&[12, 16, 10], &[3, 4, 2], 0.02, 4545).build::<f64>();
    let out = Universe::launch(4, move |c| {
        let grid = CartGrid::new(c, &[1, 4, 1]);
        let xd = DistTensor::scatter_from_replicated(&grid, &x);
        let cfg = HooiConfig::hosi_dt().with_max_iters(2).with_seed(5);
        set_overlap(OverlapMode::On);
        let on = dist_hooi(&grid, &xd, &[3, 4, 2], &cfg);
        set_overlap(OverlapMode::Off);
        let off = dist_hooi(&grid, &xd, &[3, 4, 2], &cfg);
        set_overlap(OverlapMode::On);
        let bits = |r: &ra_hooi::tucker::dist::DistRunResult<f64>| {
            let mut v = vec![r.rel_error.to_bits()];
            for f in &r.tucker.factors {
                v.extend(f.as_slice().iter().map(|x| x.to_bits()));
            }
            v.extend(r.tucker.core.local().data().iter().map(|x| x.to_bits()));
            v
        };
        (bits(&on), bits(&off))
    });
    for (rank, (on, off)) in out.iter().enumerate() {
        assert_eq!(
            on, off,
            "rank {rank}: pipelined HOOI diverged from blocking"
        );
    }
}

/// Chaos: a straggler demotion fires while the pipelined TTM/SI
/// collectives are in flight. The revocation must drain the split-phase
/// requests as typed errors absorbed by the recovery protocol — the run
/// completes on the survivors instead of hanging in a `wait`.
#[test]
fn straggler_demotion_drains_inflight_pipeline_cleanly() {
    use ra_hooi::mpi::FaultPlan;
    use ra_hooi::obs::StragglerPolicy;
    use std::time::Duration;

    const VICTIM: usize = 1;
    let plan = FaultPlan::quiet(77).with_slow_rank(VICTIM, Duration::from_millis(5));
    let u = Universe::with_fault_plan(4, plan);
    u.set_recv_timeout(Duration::from_secs(60));
    let out = u.run(move |c| {
        let spec = SyntheticSpec::new(&[12, 10, 8], &[3, 3, 2], 0.01, 917);
        let grid = CartGrid::new(c, &[2, 2, 1]);
        let x = DistTensor::scatter_from_replicated(&grid, &spec.build::<f64>());
        let cfg = RaConfig::ra_hosi_dt(0.1, &[2, 2, 2])
            .with_seed(31)
            .with_alpha(2.0)
            .with_max_iters(3);
        let res = ResilienceConfig::default().with_straggler(
            StragglerPolicy::new(2.0)
                .with_consecutive(1)
                .with_min_secs(0.02),
        );
        // Overlap defaults on: the sweeps leading up to the demotion run
        // the pipelined kernels, so the verdict lands with split-phase
        // requests posted on the victim's fibers.
        match dist_ra_hooi_resilient(&grid, &x, &cfg, &res).expect("no rank errors out") {
            ResilientOutcome::Completed { result, report, .. } => {
                assert_eq!(report.demoted_ranks, vec![VICTIM]);
                assert!(result.rel_error <= 0.1, "post-demotion fit missed");
                1u64
            }
            ResilientOutcome::Spare { report, .. } => {
                assert_eq!(report.demoted_ranks, vec![VICTIM]);
                0u64
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    });
    // Three survivors cannot fill a [2, 2, 1] grid: the rebuild settles
    // on 2 active ranks, parking the victim and one survivor as spares.
    assert_eq!(out.iter().sum::<u64>(), 2, "2 active ranks complete");
}

#[test]
fn fault_free_resilient_solver_conforms_to_the_plain_distributed_run() {
    let case = &cases()[0];
    let x = SyntheticSpec::new(&case.dims, &case.ranks, 0.01, case.seed).build::<f64>();
    let guess = vec![2; case.dims.len()];
    let cfg = RaConfig::ra_hosi_dt(0.05, &guess).with_seed(9);

    let cfg2 = cfg.clone();
    let xg = x.clone();
    let plain = Universe::launch(4, move |c| {
        let grid = CartGrid::new(c, &[2, 2, 1]);
        let xd = DistTensor::scatter_from_replicated(&grid, &xg);
        dist_ra_hooi(&grid, &xd, &cfg2).rel_error
    });

    let cfg2 = cfg.clone();
    let xg = x.clone();
    let resilient = Universe::launch(4, move |c| {
        let grid = CartGrid::new(c, &[2, 2, 1]);
        let xd = DistTensor::scatter_from_replicated(&grid, &xg);
        let out = dist_ra_hooi_resilient(&grid, &xd, &cfg2, &ResilienceConfig::default())
            .expect("fault-free resilient run succeeds");
        match out {
            ResilientOutcome::Completed { result, report, .. } => {
                assert_eq!(report.recoveries, 0, "fault-free run took a recovery");
                result.rel_error
            }
            other => panic!("fault-free run did not complete: {other:?}"),
        }
    });

    for (rank, (a, b)) in plain.iter().zip(&resilient).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "rank {rank}: resilient path diverged fault-free: {a} vs {b}"
        );
    }
}
