#!/usr/bin/env bash
# CI gate: formatting, lints, build, full test suite, chaos smoke.
# Everything runs offline against the vendored dependency stubs.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test (workspace)"
cargo test --workspace --offline -q

echo "==> verify: differential oracles + invariant checkers"
cargo test -q --offline -p ratucker-verify

echo "==> verify: 25-schedule exploration incl. crash-recovery, straggler demotion, budget pressure (fixed seeds)"
cargo test -q --offline -p ratucker-verify --test explore -- \
  p4_recovery_converges_to_identical_state_under_25_schedules \
  p4_straggler_demotion_converges_to_identical_state_under_25_schedules \
  p8_budget_pressure_converges_to_identical_state_under_25_schedules

echo "==> verify: conformance sweep d in {3,4} x P in {1,2,4,8} vs sequential oracles"
cargo test -q --offline --test conformance

echo "==> chaos smoke (single-threaded: fault scenarios share wall-clock budgets)"
cargo test -q --offline --test chaos -- --test-threads=1

echo "==> recovery chaos smoke (online shrink-and-continue + checkpoint fallback)"
cargo test -q --offline --test chaos -- --test-threads=1 \
  kill_one_of_eight_mid_sweep_recovers_online_within_1e10 \
  killing_rank_and_buddy_falls_back_to_checkpoint_cleanly \
  sampled_fault_plans_through_the_resilient_solver

echo "==> gray-failure smoke (straggler demotion, retry healing, deadline fallback; 60 s guard)"
GRAY_T0=$SECONDS
cargo test -q --offline --test chaos -- --test-threads=1 \
  persistent_straggler_at_p8_is_demoted_online_within_1e10 \
  flaky_link_is_fully_healed_by_retries_bit_identically \
  deadline_expiry_under_dead_slow_rank_falls_back_to_checkpoint
GRAY_ELAPSED=$((SECONDS - GRAY_T0))
if [ "$GRAY_ELAPSED" -ge 60 ]; then
  echo "gray-failure smoke took ${GRAY_ELAPSED}s (>= 60s): a deadline/retry path is stalling" >&2
  exit 1
fi

echo "==> memory-pressure smoke (degradation ladder + checkpoint-floor fallback; 60 s guard)"
MEM_T0=$SECONDS
cargo test -q --offline --test chaos -- --test-threads=1 \
  mid_sweep_budget_shrink_engages_ladder_and_converges \
  budget_below_checkpoint_floor_falls_back_cleanly
MEM_ELAPSED=$((SECONDS - MEM_T0))
if [ "$MEM_ELAPSED" -ge 60 ]; then
  echo "memory-pressure smoke took ${MEM_ELAPSED}s (>= 60s): a budget-recovery path is stalling" >&2
  exit 1
fi

echo "==> bench JSON reports (criterion stub -> BENCH_*.json)"
# Absolute paths: cargo runs bench binaries from the package dir.
BENCH_JSON="$PWD/target/BENCH_kernels.json" \
  cargo bench -q --offline -p ratucker-bench --bench kernels
BENCH_JSON="$PWD/target/BENCH_tucker.json" \
  cargo bench -q --offline -p ratucker-bench --bench tucker_algorithms
test -s target/BENCH_kernels.json
test -s target/BENCH_tucker.json

echo "==> trace smoke (span pipeline round-trip + perf-model validation)"
cargo run -q --release --offline -p ratucker-bench --bin tracecheck target/ci-trace.json

echo "==> trace smoke (CLI --trace-out on a small RA-HOSI-DT run)"
TRACE_CFG="$(mktemp)"
cat > "$TRACE_CFG" <<'EOF'
Global dims = 12 10 8
Construction Ranks = 3 3 2
Decomposition Ranks = 4 4 3
Noise = 0.01
Processor grid dims = 1 2 2
Dimension Tree Memoization = true
SVD Method = 2
HOOI-Adapt Threshold = 0.1
HOOI max iters = 3
Print timings = true
EOF
cargo run -q --release --offline -p ratucker-cli --bin hooi -- \
  --parameter-file "$TRACE_CFG" --trace-out target/ci-cli-trace.json --mem-budget 1G
test -s target/ci-cli-trace.json
rm -f "$TRACE_CFG"

echo "ci.sh: all green"
