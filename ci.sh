#!/usr/bin/env bash
# CI gate: formatting, lints, build, full test suite, chaos smoke.
# Everything runs offline against the vendored dependency stubs.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test (workspace)"
cargo test --workspace --offline -q

echo "==> verify: differential oracles + invariant checkers"
cargo test -q --offline -p ratucker-verify

echo "==> verify: 25-schedule exploration incl. crash-recovery, straggler demotion, budget pressure, pipelined overlap (fixed seeds)"
cargo test -q --offline -p ratucker-verify --test explore -- \
  p4_recovery_converges_to_identical_state_under_25_schedules \
  p4_straggler_demotion_converges_to_identical_state_under_25_schedules \
  p8_budget_pressure_converges_to_identical_state_under_25_schedules \
  p4_pipelined_ttm_si_bit_identical_under_25_schedules

echo "==> verify: conformance sweep d in {3,4} x P in {1,2,4,8} vs sequential oracles"
cargo test -q --offline --test conformance

echo "==> kernel proptests (packed GEMM/SYRK vs naive oracles, 1 vs 4 workers bit-identical)"
cargo test -q --offline --test proptest_kernels

echo "==> 2-thread conformance smoke (intra-rank workers on; results must stay bit-identical; 60 s guard)"
PAR_T0=$SECONDS
RATUCKER_THREADS=2 cargo test -q --offline --test conformance -- \
  sthosvd_conforms_to_the_sequential_oracle_on_every_grid \
  ra_hosi_dt_conforms_to_the_sequential_oracle_on_every_grid
PAR_ELAPSED=$((SECONDS - PAR_T0))
if [ "$PAR_ELAPSED" -ge 60 ]; then
  echo "2-thread conformance smoke took ${PAR_ELAPSED}s (>= 60s): the worker pool is stalling" >&2
  exit 1
fi

echo "==> overlap smoke (pipelined vs blocking TTM/SI bitwise + mid-pipeline drain; 60 s guard)"
OVL_T0=$SECONDS
cargo test -q --offline --test conformance -- \
  overlap_on_is_bitwise_identical_to_blocking_on_every_grid \
  p4_pipelined_hooi_matches_blocking_smoke \
  straggler_demotion_drains_inflight_pipeline_cleanly
cargo test -q --offline --test overlap_prop
OVL_ELAPSED=$((SECONDS - OVL_T0))
if [ "$OVL_ELAPSED" -ge 60 ]; then
  echo "overlap smoke took ${OVL_ELAPSED}s (>= 60s): a split-phase wait is stalling" >&2
  exit 1
fi

echo "==> chaos smoke (single-threaded: fault scenarios share wall-clock budgets)"
cargo test -q --offline --test chaos -- --test-threads=1

echo "==> recovery chaos smoke (online shrink-and-continue + checkpoint fallback)"
cargo test -q --offline --test chaos -- --test-threads=1 \
  kill_one_of_eight_mid_sweep_recovers_online_within_1e10 \
  killing_rank_and_buddy_falls_back_to_checkpoint_cleanly \
  sampled_fault_plans_through_the_resilient_solver

echo "==> gray-failure smoke (straggler demotion, retry healing, deadline fallback; 60 s guard)"
GRAY_T0=$SECONDS
cargo test -q --offline --test chaos -- --test-threads=1 \
  persistent_straggler_at_p8_is_demoted_online_within_1e10 \
  flaky_link_is_fully_healed_by_retries_bit_identically \
  deadline_expiry_under_dead_slow_rank_falls_back_to_checkpoint
GRAY_ELAPSED=$((SECONDS - GRAY_T0))
if [ "$GRAY_ELAPSED" -ge 60 ]; then
  echo "gray-failure smoke took ${GRAY_ELAPSED}s (>= 60s): a deadline/retry path is stalling" >&2
  exit 1
fi

echo "==> memory-pressure smoke (degradation ladder + checkpoint-floor fallback; 60 s guard)"
MEM_T0=$SECONDS
cargo test -q --offline --test chaos -- --test-threads=1 \
  mid_sweep_budget_shrink_engages_ladder_and_converges \
  budget_below_checkpoint_floor_falls_back_cleanly
MEM_ELAPSED=$((SECONDS - MEM_T0))
if [ "$MEM_ELAPSED" -ge 60 ]; then
  echo "memory-pressure smoke took ${MEM_ELAPSED}s (>= 60s): a budget-recovery path is stalling" >&2
  exit 1
fi

echo "==> serve smoke (multi-tenant service: mixed workload on a warm P=4 universe; 60 s guard)"
SERVE_T0=$SECONDS
# loadgen exits non-zero on any failed/lost job or traffic-partition
# violation and prints per-kind latency percentiles on success.
cargo run -q --release --offline -p ratucker-serve --bin loadgen -- \
  --p 4 --tenants 2 --requests 200 --seed 7
SERVE_ELAPSED=$((SECONDS - SERVE_T0))
if [ "$SERVE_ELAPSED" -ge 60 ]; then
  echo "serve smoke took ${SERVE_ELAPSED}s (>= 60s): the service queue or a worker is stalling" >&2
  exit 1
fi

echo "==> serve smoke (served stdio protocol round-trip)"
printf 'compress acme f dims=12x10x8 ranks=3x3x2\nquery acme f off=0,0,0 len=2,2,2\nstatus acme\nshutdown\n' |
  cargo run -q --release --offline -p ratucker-cli --bin served -- --p 4 --mem-budget 1G \
  | tee target/ci-served.log
if grep -q '^err' target/ci-served.log || ! grep -q 'partition_ok=true' target/ci-served.log; then
  echo "served stdio smoke failed (see target/ci-served.log)" >&2
  exit 1
fi

echo "==> bench JSON reports (criterion stub -> BENCH_*.json)"
# Absolute paths: cargo runs bench binaries from the package dir.
# Benches are a soft gate: warn (don't fail CI) if a report is missing,
# but always refresh the stable repo-root copies when one is produced.
BENCH_JSON="$PWD/target/BENCH_kernels.json" \
  cargo bench -q --offline -p ratucker-bench --bench kernels ||
  echo "warning: kernels bench did not run cleanly" >&2
BENCH_JSON="$PWD/target/BENCH_tucker.json" \
  cargo bench -q --offline -p ratucker-bench --bench tucker_algorithms ||
  echo "warning: tucker_algorithms bench did not run cleanly" >&2
# Diff fresh reports against the committed baselines before refreshing
# them: each run prints the per-benchmark trajectory and soft-warns on
# >25% regressions (never fails CI — bench noise must not gate merges).
cargo run -q --release --offline -p ratucker-bench --bin benchdiff -- \
  BENCH_kernels.json target/BENCH_kernels.json \
  BENCH_tucker.json target/BENCH_tucker.json ||
  echo "warning: benchdiff did not run cleanly" >&2
for b in kernels tucker; do
  if [ -s "target/BENCH_${b}.json" ]; then
    cp "target/BENCH_${b}.json" "BENCH_${b}.json"
  else
    echo "warning: bench report target/BENCH_${b}.json missing or empty (benches skipped?);" \
      "repo-root BENCH_${b}.json not refreshed" >&2
  fi
done

echo "==> trace smoke (span pipeline round-trip + perf-model validation)"
cargo run -q --release --offline -p ratucker-bench --bin tracecheck target/ci-trace.json

echo "==> trace smoke (CLI --trace-out on a small RA-HOSI-DT run)"
TRACE_CFG="$(mktemp)"
cat > "$TRACE_CFG" <<'EOF'
Global dims = 12 10 8
Construction Ranks = 3 3 2
Decomposition Ranks = 4 4 3
Noise = 0.01
Processor grid dims = 1 2 2
Dimension Tree Memoization = true
SVD Method = 2
HOOI-Adapt Threshold = 0.1
HOOI max iters = 3
Print timings = true
EOF
cargo run -q --release --offline -p ratucker-cli --bin hooi -- \
  --parameter-file "$TRACE_CFG" --trace-out target/ci-cli-trace.json --mem-budget 1G
test -s target/ci-cli-trace.json
rm -f "$TRACE_CFG"

echo "ci.sh: all green"
