#!/usr/bin/env bash
# CI gate: formatting, lints, build, full test suite, chaos smoke.
# Everything runs offline against the vendored dependency stubs.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test (workspace)"
cargo test --workspace --offline -q

echo "==> chaos smoke (single-threaded: fault scenarios share wall-clock budgets)"
cargo test -q --offline --test chaos -- --test-threads=1

echo "ci.sh: all green"
